"""Misrouting candidate enumeration (MM+L policy and local detours).

The in-transit adaptive mechanisms (OLM and the contention-based mechanisms
of the paper) separate *when* to misroute (the trigger, which differs per
mechanism) from *where* to misroute (the candidate set, which they share).

Global misrouting follows the MM+L policy of Garcia et al. (INA-OCMC 2013):
at injection a packet may be diverted either through one of the current
router's own global links or through a local link towards another router of
the group (which then offers its own global links); after the first hop only
the current router's global links are considered.  Local misrouting inside
the intermediate or destination group picks a different local link than the
minimal one, adding one extra local hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple, Optional

from repro.network.packet import Packet
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = [
    "MisrouteCandidate",
    "compute_global_candidates",
    "compute_local_candidates",
    "compute_ring_escape_candidates",
    "compute_uplink_candidates",
    "global_misroute_candidates",
    "local_misroute_candidates",
]


class MisrouteCandidate(NamedTuple):
    """A possible nonminimal output port."""

    port: int
    kind: PortKind
    #: Group reached if this candidate is a global port (else ``None``).
    target_group: Optional[int]


def compute_global_candidates(
    topology: Topology,
    router_id: int,
    dst_group: int,
    minimal_port: int,
    allow_local_proxy: bool,
) -> List[MisrouteCandidate]:
    """Enumerate the MM+L global-misroute candidates for one routing key.

    Pure function of ``(router_id, dst_group, minimal_port,
    allow_local_proxy)`` for a given topology, which is what lets
    :class:`~repro.routing.adaptive.AdaptiveInTransitRouting` memoize the
    candidate lists instead of re-enumerating them for every blocked head
    every cycle.
    """
    current_group = topology.router_region(router_id)
    candidates: List[MisrouteCandidate] = []
    for port in topology.global_ports:
        if port == minimal_port:
            continue
        target = topology.port_target_region(router_id, port)
        if target == dst_group or target == current_group:
            continue
        candidates.append(MisrouteCandidate(port, PortKind.GLOBAL, target))
    if allow_local_proxy:
        for port in topology.local_ports:
            if port == minimal_port:
                continue
            candidates.append(MisrouteCandidate(port, PortKind.LOCAL, None))
    return candidates


def compute_local_candidates(
    topology: Topology, minimal_port: int
) -> List[MisrouteCandidate]:
    """Enumerate the local-detour candidates for one minimal port (pure)."""
    if topology.port_kind(minimal_port) is not PortKind.LOCAL:
        return []
    candidates: List[MisrouteCandidate] = []
    for port in topology.local_ports:
        if port == minimal_port:
            continue
        candidates.append(MisrouteCandidate(port, PortKind.LOCAL, None))
    return candidates


def compute_ring_escape_candidates(
    topology: Topology, minimal_port: int
) -> List[MisrouteCandidate]:
    """Nonminimal ring-escape candidates for one minimal ring port (pure).

    On dateline-schedule topologies (the torus) the only in-transit
    nonminimal choice is the *direction* around the minimal port's ring:
    the single candidate is the same dimension's opposite-direction port,
    which sends the packet the long way (up to ``k - 1`` links) around.
    The candidate set is a pure function of the minimal port — rings are
    laid out identically on every router — so callers memoize it per port.
    """
    if topology.port_kind(minimal_port) is not PortKind.LOCAL:
        return []
    return [
        MisrouteCandidate(
            topology.opposite_ring_port(minimal_port), PortKind.LOCAL, None
        )
    ]


def compute_uplink_candidates(
    topology: Topology, minimal_port: int
) -> List[MisrouteCandidate]:
    """Equal-cost uplink alternatives for one minimal port (pure).

    On uplink-multipath topologies (the fat tree,
    :attr:`~repro.topology.base.PathModel.supports_uplink_multipath`) every
    uplink of a switch below the destination's nearest common ancestor
    reaches it in the same number of hops, so when the minimal port is an
    uplink the *other* uplinks are the adaptive candidates — derived from
    the uniform port layout, not from coordinates.  Down hops and ejection
    are deterministic (the destination pins every descending digit), so a
    non-uplink minimal port has no candidates.  A diverted hop is
    equal-cost and stays on the up/down class schedule; it is still counted
    as a local misroute because it leaves the funneled default path.  Every
    switch whose minimal port is an uplink lies below the top level, where
    all uplinks are connected, so the set is a pure function of the minimal
    port and callers memoize it per port.
    """
    uplinks = topology.uplink_ports
    if minimal_port not in uplinks:
        return []
    return [
        MisrouteCandidate(port, PortKind.LOCAL, None)
        for port in uplinks
        if port != minimal_port
    ]


def global_misroute_candidates(
    topology: Topology,
    router: "Router",
    packet: Packet,
    minimal_port: int,
    *,
    allow_local_proxy: bool,
) -> List[MisrouteCandidate]:
    """Nonminimal candidates for a *global* misroute at ``router``.

    Candidates are the router's global ports leading to a group other than
    the current and destination groups, excluding the minimal port.  When
    ``allow_local_proxy`` is true (injection-time decision, the "+L" part of
    MM+L), local ports towards the other routers of the group are offered as
    well; a packet forwarded through one of them re-evaluates misrouting at
    the neighbouring router.
    """
    return compute_global_candidates(
        topology,
        router.router_id,
        topology.node_region(packet.dst),
        minimal_port,
        allow_local_proxy,
    )


def local_misroute_candidates(
    topology: Topology,
    router: "Router",
    packet: Packet,
    minimal_port: int,
) -> List[MisrouteCandidate]:
    """Nonminimal candidates for a *local* misroute inside the current group.

    Only meaningful when the minimal output is a local port: the candidates
    are the other local ports of the router (one extra hop through another
    router of the group).
    """
    return compute_local_candidates(topology, minimal_port)
