"""PB: PiggyBacking source-adaptive routing (Jiang, Kim & Dally, ISCA 2009).

Each router continuously classifies its own global channels as *saturated*
or not from their credit-estimated occupancy, and piggybacks these flags on
the traffic it sends inside the group, so every router of a group knows the
saturation state of all ``a*h`` global channels of the group (an intra-group
ECN).  At injection the source router chooses between the minimal path and a
Valiant path to a random intermediate router: the Valiant path is chosen when
the minimal global channel is flagged saturated or when the UGAL-style
queue-length comparison ``q_min * len_min > q_val * len_val + T`` holds
(inherited from :class:`~repro.routing.ugal.UGALRouting`).  Once chosen, the
route is oblivious (source routing).

This is the paper's representative of *congestion-based source-adaptive*
routing, whose delayed reaction and routing oscillations (Figs. 7–9) motivate
the contention-based mechanisms.

The saturation ECN is defined over the Dragonfly's groups and their
one-link-per-group-pair global channels, so PB is **Dragonfly-only**: pairing
it with another topology raises
:class:`~repro.routing.base.UnsupportedTopologyError` (use the plain,
topology-agnostic ``UGAL`` there).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet
from repro.routing.base import UnsupportedTopologyError
from repro.routing.ugal import UGALRouting
from repro.topology.dragonfly import DragonflyTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.router import Router

__all__ = ["PiggybackRouting"]


class PiggybackRouting(UGALRouting):
    """Credit-based source-adaptive routing with intra-group saturation ECN."""

    name = "PB"
    needs_extra_local_vc = True
    needs_post_cycle = True

    def __init__(self, topology, params: SimulationParameters, rng):
        if not isinstance(topology, DragonflyTopology):
            raise UnsupportedTopologyError.for_mechanism(
                self.name,
                topology,
                "the intra-group saturation ECN piggybacks flags over the "
                "Dragonfly's one-global-link-per-group-pair structure",
                "the topology-agnostic UGAL (same source-adaptive "
                "comparison, no ECN)",
            )
        super().__init__(topology, params, rng)
        # Saturation flags per group, indexed by the group-local global-link
        # offset (router_position * h + global_port_index).
        links = topology.global_links_per_group
        self._flags: List[List[bool]] = [
            [False] * links for _ in range(topology.num_groups)
        ]
        # Groups with at least one saturated flag, maintained by post_cycle
        # so the time-warp horizon check is O(1).
        self._saturated_groups: set = set()
        # Flags travel inside the group piggybacked on packets; model the
        # notification delay as one local link latency.
        self._pending: Deque[Tuple[int, int, List[bool]]] = deque()
        self.notification_delay = params.local_link_latency

    # ------------------------------------------------------------------ flags
    def global_link_offset(self, router_id: int, port: int) -> int:
        """Group-local index of the global link at ``(router_id, port)``."""
        pos = self.topology.router_position(router_id)
        return pos * self.topology.config.h + (port - min(self.topology.global_ports))

    def is_saturated(self, group: int, offset: int) -> bool:
        return self._flags[group][offset]

    def saturation_flags(self, group: int) -> List[bool]:
        return list(self._flags[group])

    def post_cycle(self, network: "Network", cycle: int) -> None:
        """Recompute saturation flags and deliver them after the ECN delay."""
        topo = self.topology
        h = topo.config.h
        first_global = min(topo.global_ports)
        for group in range(topo.num_groups):
            flags = [False] * topo.global_links_per_group
            for router in network.group_routers(group):
                pos = router.position
                for k in range(h):
                    port = first_global + k
                    out = router.output_ports[port]
                    capacity = sum(out.max_credits)
                    occupancy = out.total_occupancy()
                    flags[pos * h + k] = (
                        occupancy >= self.params.pb_saturation_fraction * capacity
                    )
            self._pending.append((cycle + self.notification_delay, group, flags))
        while self._pending and self._pending[0][0] <= cycle:
            _, group, flags = self._pending.popleft()
            self._flags[group] = flags
            if any(flags):
                self._saturated_groups.add(group)
            else:
                self._saturated_groups.discard(group)

    def post_cycle_horizon(self, network: "Network", cycle: int) -> Optional[int]:
        """PB's ECN must be re-evaluated every cycle while anything can move.

        Occupancies (and therefore the saturation flags) only change while
        routers are active; once the network is fully quiet with no pending
        flag updates in flight and no saturated flag left, recomputing the
        flags every cycle is a provable no-op (all occupancies are zero), so
        the engine may warp freely.
        """
        if network._active_routers or self._pending or self._saturated_groups:
            return cycle
        return None

    # -------------------------------------------------------------- injection
    def prefers_valiant(
        self, router: "Router", packet: Packet, intermediate: int, cycle: int
    ) -> bool:
        """Saturation-flag ECN first, then the inherited UGAL comparison."""
        topo = self.topology
        src_group = topo.router_group(router.router_id)
        dst_group = topo.node_group(packet.dst)
        gw_router, gw_port = topo.global_link_endpoint(src_group, dst_group)
        offset = self.global_link_offset(gw_router, gw_port)
        if self.is_saturated(src_group, offset):
            return True
        return self._ugal_prefers_valiant(router, packet, intermediate)
