"""Deadlock avoidance: virtual-channel assignment policies and their checks.

Two construction-time deadlock-freedom arguments are implemented, selected
by the topology's :attr:`~repro.topology.base.PathModel.vc_schedule`:

**Path-stage schedule** (dragonfly, flattened butterfly, full mesh).
The routing mechanisms walk an ascending sequence of buffer classes along
every path (Kim et al., ISCA 2008; Garcia et al., ICPP 2012/2013): with
``g`` the number of global hops already taken and ``l`` the number of local
hops already taken inside the current group,

* a global hop uses global VC ``g``;
* a local hop uses local VC ``min(l, 1)`` while ``g = 0`` (source group) and
  ``2*g - 1 + min(l, 1)`` afterwards.

Together with the path restrictions enforced by the routing mechanisms
(at most one global misroute; at most one local misroute per group; the
local "proxy" hop of an MM+L misroute must be followed by a global hop;
Valiant intermediate routers are chosen outside the source group; no local
misroute in the destination group after a global misroute), the buffer
classes used along any path follow the strictly increasing order::

    L0 < G0 < L1 < L2 < G1 < L3 < ejection

so the channel dependency graph is acyclic and the network cannot deadlock.
This needs 4 local VCs and 2 global VCs for the nonminimal mechanisms — the
same budget Table I gives VAL and PB.  (The paper's OLM-style mechanisms use
3 local VCs with a more intricate argument that we do not replicate; the
extra local VC is documented as a deviation in DESIGN.md.)

**Dateline schedule** (torus).  Ring links form cycles, so *some* VC index
must be reused around each ring and the strictly-increasing argument cannot
apply.  Instead every ring has a *dateline* (its wrap-around link) and each
hop uses the buffer class ``(leg, dim, crossed)`` — Valiant leg, ring
dimension, and whether the current ring traversal has reached the dateline
— mapped to VC index ``2 * leg + crossed``.  The classes visited along any
dimension-order path are lexicographically non-decreasing, a traversal
occupies each class only on one ring where the dateline cut breaks the
cycle (packets travel at most ``k // 2 < k`` links per ring, so
post-dateline channels never wrap back around), and therefore the channel
dependency graph is acyclic.  :func:`validate_dateline_shapes` re-checks
those conditions for every class shape a topology declares.

**Up/down schedule** (fat tree).  Tree paths climb to an ancestor and
descend exactly once, so each hop occupies the buffer class ``(direction,
link_level)`` — up hops ride VC 0, down hops VC 1, both a pure function of
the output port.  Ranking up link level ``l`` as ``l`` and down link level
``l`` as ``2 * L - 1 - l`` (``L`` link levels) makes every legal shape
strictly ascending: up legs climb levels, the up->down turn happens at most
once (every down rank exceeds every up rank), and down legs descend levels
in ascending rank order.  Distinct, totally ordered classes visited in
strictly increasing rank means the channel dependency graph is acyclic —
no dateline machinery needed.  :func:`validate_updown_shapes` re-checks
those conditions for every class shape a topology declares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.network.packet import Packet
from repro.topology.base import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.base import PathModel

__all__ = [
    "VCAssignmentPolicy",
    "buffer_class_order",
    "path_buffer_classes",
    "validate_hop_sequences",
    "validate_dateline_shapes",
    "validate_updown_shapes",
    "validate_path_model",
]


#: Strictly increasing order of buffer classes used by the VC assignment.
#: Each entry is ``(kind, vc)``; ejection is implicitly the largest class.
BUFFER_CLASS_ORDER: List[Tuple[str, int]] = [
    ("local", 0),
    ("global", 0),
    ("local", 1),
    ("local", 2),
    ("global", 1),
    ("local", 3),
]


def buffer_class_order() -> List[Tuple[str, int]]:
    """The global order of (port kind, VC) buffer classes."""
    return list(BUFFER_CLASS_ORDER)


def class_rank(kind: str, vc: int) -> int:
    """Rank of a buffer class in the global order (larger = later)."""
    try:
        return BUFFER_CLASS_ORDER.index((kind, vc))
    except ValueError as exc:
        raise ValueError(f"unknown buffer class ({kind}, {vc})") from exc


class VCAssignmentPolicy:
    """Path-stage VC assignment, parameterised by the VC counts."""

    def __init__(self, local_vcs: int, global_vcs: int, injection_vcs: int):
        if min(local_vcs, global_vcs, injection_vcs) < 1:
            raise ValueError("every port class needs at least one VC")
        self.local_vcs = local_vcs
        self.global_vcs = global_vcs
        self.injection_vcs = injection_vcs

    def vc_for_hop(self, packet: Packet, output_kind: PortKind) -> int:
        """VC to request on the next hop of ``packet`` through ``output_kind``."""
        if output_kind is PortKind.GLOBAL:
            return min(packet.global_hops, self.global_vcs - 1)
        if output_kind is PortKind.LOCAL:
            g = packet.global_hops
            l = min(packet.local_hops_in_group, 1)
            vc = l if g == 0 else 2 * g - 1 + l
            return min(vc, self.local_vcs - 1)
        return 0

    def vc_for_stage(self, global_hops: int, local_hops_in_group: int, output_kind: PortKind) -> int:
        """Same as :meth:`vc_for_hop` but from explicit stage counters."""
        if output_kind is PortKind.GLOBAL:
            return min(global_hops, self.global_vcs - 1)
        if output_kind is PortKind.LOCAL:
            l = min(local_hops_in_group, 1)
            vc = l if global_hops == 0 else 2 * global_hops - 1 + l
            return min(vc, self.local_vcs - 1)
        return 0

    def max_vcs(self, kind: PortKind) -> int:
        if kind is PortKind.GLOBAL:
            return self.global_vcs
        if kind is PortKind.LOCAL:
            return self.local_vcs
        return self.injection_vcs


def validate_hop_sequences(
    hop_sequences: Iterable[Sequence[str]],
    *,
    local_vcs: int,
    global_vcs: int,
    context: str = "routing",
) -> None:
    """Check that every hop sequence walks strictly increasing buffer classes.

    This is the topology-generic deadlock-freedom argument, parameterized by
    the topology's :class:`~repro.topology.base.PathModel`: for each declared
    hop-kind sequence, the *capped* path-stage VC assignment (the exact
    formula the routing hot paths use, with the given VC budget) must visit
    ``(kind, vc)`` buffer classes in strictly increasing global order.  A
    violation means the VC budget is too small for the topology's paths —
    raising here at construction time replaces a silent deadlock risk at
    simulation time.
    """
    policy = VCAssignmentPolicy(
        local_vcs=local_vcs, global_vcs=global_vcs, injection_vcs=1
    )
    for hops in hop_sequences:
        ranks: List[int] = []
        g = 0
        l_in_group = 0
        for kind_name in hops:
            kind = PortKind.GLOBAL if kind_name == "global" else PortKind.LOCAL
            vc = policy.vc_for_stage(g, l_in_group, kind)
            ranks.append(class_rank(kind_name, vc))
            if kind_name == "global":
                g += 1
                l_in_group = 0
            else:
                l_in_group += 1
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            raise ValueError(
                f"{context}: hop sequence {'-'.join(hops)} does not walk "
                f"strictly increasing buffer classes under the VC budget "
                f"(local={local_vcs}, global={global_vcs}); the configuration "
                "is not deadlock-free"
            )


def validate_dateline_shapes(
    shapes: Iterable[Sequence[Tuple[int, int, int]]],
    *,
    ring_vcs: int,
    context: str = "routing",
    ring_lengths: Optional[Sequence[int]] = None,
    max_ring_hops: Optional[Sequence[int]] = None,
) -> None:
    """Check dateline class shapes for acyclicity within a ring-VC budget.

    Each shape is a sequence of ``(leg, dim, crossed)`` buffer classes in
    path order, as declared by a dateline-schedule
    :class:`~repro.topology.base.PathModel` (consecutive hops may occupy
    the same class while a packet walks one ring, so the shape lists the
    *distinct* classes in visit order).  The schedule is deadlock-free when

    * the classes are **lexicographically strictly increasing** — distinct
      classes are visited in one global order, so dependencies between
      classes cannot cycle.  In particular a dimension's ``crossed`` bit
      can only go ``0 -> 1`` (the dateline is crossed at most once per
      traversal) and a later leg never reuses an earlier leg's classes;
    * within a single class, dependencies stay on one ring and the
      dateline cuts them: ``crossed = 0`` chains end before the wrap link
      and ``crossed = 1`` chains start at it, so neither can close the
      ring cycle as long as a traversal covers **fewer links than the
      ring has** — ``k // 2`` for minimal direction choice, ``k - 1`` for
      the nonminimal ring escape (one fixed direction the long way
      around).  Pass ``ring_lengths`` (per-dimension ring sizes) and
      ``max_ring_hops`` (the per-dimension worst-case links one traversal
      covers) to have this condition checked instead of assumed: every
      declared dimension must exist and satisfy
      ``max_ring_hops[dim] < ring_lengths[dim]``;
    * the VC index ``2 * leg + crossed`` of every class fits the ring-port
      VC budget.  The runtime assignment never caps dateline VCs (a capped
      class would silently merge with a lower one and void the argument),
      so raising here at construction time replaces a silent deadlock risk
      at simulation time.
    """
    if ring_lengths is not None and max_ring_hops is not None:
        for dim, (length, hops) in enumerate(zip(ring_lengths, max_ring_hops)):
            if hops >= length:
                raise ValueError(
                    f"{context}: a single traversal of dimension {dim} may "
                    f"cover {hops} of its {length} ring links; covering the "
                    "whole ring closes the channel-dependency cycle and the "
                    "dateline cut no longer applies"
                )
    for shape in shapes:
        for cls in shape:
            leg, dim, crossed = cls
            if leg < 0 or dim < 0 or crossed not in (0, 1):
                raise ValueError(
                    f"{context}: malformed dateline class {cls!r} "
                    "(expected (leg >= 0, dim >= 0, crossed in {0, 1}))"
                )
            if ring_lengths is not None and dim >= len(ring_lengths):
                raise ValueError(
                    f"{context}: dateline class {cls!r} names dimension "
                    f"{dim} but only {len(ring_lengths)} ring dimensions "
                    "are declared"
                )
            vc = 2 * leg + crossed
            if vc >= ring_vcs:
                raise ValueError(
                    f"{context}: dateline class {cls!r} needs ring VC {vc} "
                    f"but only {ring_vcs} ring VCs are budgeted; the "
                    "configuration is not deadlock-free"
                )
        if any(b <= a for a, b in zip(shape, shape[1:])):
            raise ValueError(
                f"{context}: dateline shape {tuple(shape)} does not visit "
                "(leg, dim, crossed) classes in strictly increasing "
                "lexicographic order; the channel dependency graph may cycle"
            )


def validate_updown_shapes(
    shapes: Iterable[Sequence[Tuple[int, int]]],
    *,
    local_vcs: int,
    link_levels: int,
    context: str = "routing",
) -> None:
    """Check up/down class shapes for acyclicity within the local-VC budget.

    Each shape is a sequence of ``(direction, link_level)`` buffer classes
    in path order (direction 0 = up, 1 = down), as declared by an
    up/down-schedule :class:`~repro.topology.base.PathModel`.  The schedule
    is deadlock-free when every shape visits classes in **strictly
    ascending rank order**, with up link level ``l`` ranked ``l`` and down
    link level ``l`` ranked ``2 * link_levels - 1 - l``.  Ascending ranks
    force exactly the legal tree-path structure — up hops on ascending
    levels, at most one up->down turn (every down rank exceeds every up
    rank), down hops on descending levels — so the distinct, totally
    ordered classes cannot close a dependency cycle.  The VC of a class is
    its direction (up 0, down 1) and must fit the local-VC budget; the
    runtime assignment (:attr:`~repro.topology.base.Topology.updown_port_vcs`)
    never caps it, so raising here at construction time replaces a silent
    deadlock risk at simulation time.
    """
    if link_levels < 1:
        raise ValueError(
            f"{context}: an up/down path model needs at least one link level"
        )
    for shape in shapes:
        ranks: List[int] = []
        for cls in shape:
            try:
                direction, level = cls
            except (TypeError, ValueError):
                raise ValueError(
                    f"{context}: malformed up/down class {cls!r} "
                    "(expected (direction, link_level))"
                ) from None
            if direction not in (0, 1):
                raise ValueError(
                    f"{context}: malformed up/down class {cls!r} "
                    "(direction must be 0 for up or 1 for down)"
                )
            if not 0 <= level < link_levels:
                raise ValueError(
                    f"{context}: up/down class {cls!r} names link level "
                    f"{level} but only {link_levels} link levels are declared"
                )
            if direction >= local_vcs:
                raise ValueError(
                    f"{context}: up/down class {cls!r} needs local VC "
                    f"{direction} but only {local_vcs} local VCs are "
                    "budgeted; the configuration is not deadlock-free"
                )
            rank = level if direction == 0 else 2 * link_levels - 1 - level
            ranks.append(rank)
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            raise ValueError(
                f"{context}: up/down shape {tuple(shape)} does not walk "
                "strictly ascending class ranks (up legs must climb link "
                "levels, turn down at most once, then descend); the channel "
                "dependency graph may cycle"
            )


def validate_path_model(
    path_model: "PathModel",
    *,
    local_vcs: int,
    global_vcs: int,
    include_valiant: bool,
    include_adaptive: bool = False,
) -> None:
    """Validate a topology's declared MIN (and optionally Valiant/adaptive)
    paths.

    Dispatches on the path model's VC schedule: path-stage models are
    checked hop sequence by hop sequence against the strictly increasing
    buffer-class order (:func:`validate_hop_sequences`); dateline models
    are checked shape by shape against the dateline rules
    (:func:`validate_dateline_shapes`), with the ring budget taken from the
    LOCAL VC count (ring ports carry the LOCAL kind); up/down models are
    checked shape by shape against the ascending-rank rule
    (:func:`validate_updown_shapes`), likewise within the LOCAL VC budget
    (tree links carry the LOCAL kind).

    ``include_adaptive`` additionally validates the in-transit adaptive
    surface the mechanism will use: the MM+L hop shapes
    (:attr:`~repro.topology.base.PathModel.adaptive_hop_kinds`) on
    path-stage models, the ring-escape shapes with the long-way traversal
    bound (``k - 1`` links per ring instead of the minimal ``k // 2``) on
    dateline models that declare the nonminimal ring escape, and the
    uplink-multipath shapes on up/down models (equal-cost diverts, so they
    must satisfy the same ascending-rank rule as the minimal shapes).
    """
    if path_model.vc_schedule == "up_down":
        if path_model.has_global_ports:
            raise ValueError(
                f"{path_model.topology}: the up/down schedule is defined "
                "for tree (LOCAL-kind) links only, but the path model "
                "declares global ports"
            )
        shapes = list(path_model.updown_minimal_shapes)
        if include_valiant:
            shapes.extend(path_model.updown_valiant_shapes)
        if not shapes:
            raise ValueError(
                f"{path_model.topology}: an up/down path model must declare "
                "at least one (direction, link_level) class shape"
            )
        context = f"{path_model.topology} path model"
        validate_updown_shapes(
            shapes,
            local_vcs=local_vcs,
            link_levels=path_model.updown_link_levels,
            context=context,
        )
        if include_adaptive:
            if not path_model.supports_uplink_multipath:
                raise ValueError(
                    f"{path_model.topology}: in-transit adaptive validation "
                    "requested but the path model declares no uplink "
                    "multipath"
                )
            validate_updown_shapes(
                path_model.updown_adaptive_shapes,
                local_vcs=local_vcs,
                link_levels=path_model.updown_link_levels,
                context=f"{context} (uplink multipath)",
            )
        return
    if path_model.vc_schedule == "dateline":
        if path_model.has_global_ports:
            raise ValueError(
                f"{path_model.topology}: the dateline schedule is defined "
                "for ring (LOCAL-kind) links only, but the path model "
                "declares global ports"
            )
        shapes = list(path_model.dateline_minimal_shapes)
        if include_valiant:
            shapes.extend(path_model.dateline_valiant_shapes)
        if not shapes:
            raise ValueError(
                f"{path_model.topology}: a dateline path model must declare "
                "at least one (leg, dim, crossed) class shape"
            )
        # The traversal bounds are *declared* by the path model (they state
        # the routing policy's runtime worst case), never derived from the
        # ring lengths here — deriving both sides of the comparison at the
        # call site would make the whole-ring check unfalsifiable.
        ring_lengths = path_model.ring_lengths or None
        context = f"{path_model.topology} path model"
        validate_dateline_shapes(
            shapes,
            ring_vcs=local_vcs,
            context=context,
            ring_lengths=ring_lengths,
            max_ring_hops=path_model.dateline_max_ring_hops or None,
        )
        if include_adaptive:
            if not path_model.supports_nonminimal_ring_escape:
                raise ValueError(
                    f"{path_model.topology}: in-transit adaptive validation "
                    "requested but the path model declares no nonminimal "
                    "ring escape"
                )
            validate_dateline_shapes(
                path_model.dateline_adaptive_shapes,
                ring_vcs=local_vcs,
                context=f"{context} (ring escape)",
                ring_lengths=ring_lengths,
                max_ring_hops=path_model.dateline_adaptive_max_ring_hops or None,
            )
        return
    sequences = list(path_model.minimal_hop_kinds)
    if include_valiant:
        sequences.extend(path_model.valiant_hop_kinds)
    if include_adaptive:
        sequences.extend(path_model.adaptive_hop_kinds)
    validate_hop_sequences(
        sequences,
        local_vcs=local_vcs,
        global_vcs=global_vcs,
        context=f"{path_model.topology} path model",
    )


def path_buffer_classes(hop_kinds: Sequence[str]) -> List[Tuple[str, int]]:
    """Buffer classes used along a path described by its hop kinds.

    ``hop_kinds`` is a sequence of ``"local"`` / ``"global"`` strings in path
    order.  Returns the (kind, vc) class of every hop under the path-stage
    assignment with unlimited VCs; used by the property tests to check that
    every allowed path visits classes in strictly increasing order.
    """
    classes: List[Tuple[str, int]] = []
    g = 0
    l_in_group = 0
    for kind in hop_kinds:
        if kind == "global":
            classes.append(("global", g))
            g += 1
            l_in_group = 0
        elif kind == "local":
            l = min(l_in_group, 1)
            vc = l if g == 0 else 2 * g - 1 + l
            classes.append(("local", vc))
            l_in_group += 1
        else:
            raise ValueError(f"unknown hop kind {kind!r}")
    return classes
