"""Deadlock avoidance: virtual-channel assignment policy.

The Dragonfly routing mechanisms avoid deadlock by walking an ascending
sequence of buffer classes along every path (Kim et al., ISCA 2008; Garcia
et al., ICPP 2012/2013).  This reproduction uses a *path-stage* assignment:
with ``g`` the number of global hops already taken and ``l`` the number of
local hops already taken inside the current group,

* a global hop uses global VC ``g``;
* a local hop uses local VC ``min(l, 1)`` while ``g = 0`` (source group) and
  ``2*g - 1 + min(l, 1)`` afterwards.

Together with the path restrictions enforced by the routing mechanisms
(at most one global misroute; at most one local misroute per group; the
local "proxy" hop of an MM+L misroute must be followed by a global hop;
Valiant intermediate routers are chosen outside the source group; no local
misroute in the destination group after a global misroute), the buffer
classes used along any path follow the strictly increasing order::

    L0 < G0 < L1 < L2 < G1 < L3 < ejection

so the channel dependency graph is acyclic and the network cannot deadlock.
This needs 4 local VCs and 2 global VCs for the nonminimal mechanisms — the
same budget Table I gives VAL and PB.  (The paper's OLM-style mechanisms use
3 local VCs with a more intricate argument that we do not replicate; the
extra local VC is documented as a deviation in DESIGN.md.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.network.packet import Packet
from repro.topology.base import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.base import PathModel

__all__ = [
    "VCAssignmentPolicy",
    "buffer_class_order",
    "path_buffer_classes",
    "validate_hop_sequences",
    "validate_path_model",
]


#: Strictly increasing order of buffer classes used by the VC assignment.
#: Each entry is ``(kind, vc)``; ejection is implicitly the largest class.
BUFFER_CLASS_ORDER: List[Tuple[str, int]] = [
    ("local", 0),
    ("global", 0),
    ("local", 1),
    ("local", 2),
    ("global", 1),
    ("local", 3),
]


def buffer_class_order() -> List[Tuple[str, int]]:
    """The global order of (port kind, VC) buffer classes."""
    return list(BUFFER_CLASS_ORDER)


def class_rank(kind: str, vc: int) -> int:
    """Rank of a buffer class in the global order (larger = later)."""
    try:
        return BUFFER_CLASS_ORDER.index((kind, vc))
    except ValueError as exc:
        raise ValueError(f"unknown buffer class ({kind}, {vc})") from exc


class VCAssignmentPolicy:
    """Path-stage VC assignment, parameterised by the VC counts."""

    def __init__(self, local_vcs: int, global_vcs: int, injection_vcs: int):
        if min(local_vcs, global_vcs, injection_vcs) < 1:
            raise ValueError("every port class needs at least one VC")
        self.local_vcs = local_vcs
        self.global_vcs = global_vcs
        self.injection_vcs = injection_vcs

    def vc_for_hop(self, packet: Packet, output_kind: PortKind) -> int:
        """VC to request on the next hop of ``packet`` through ``output_kind``."""
        if output_kind is PortKind.GLOBAL:
            return min(packet.global_hops, self.global_vcs - 1)
        if output_kind is PortKind.LOCAL:
            g = packet.global_hops
            l = min(packet.local_hops_in_group, 1)
            vc = l if g == 0 else 2 * g - 1 + l
            return min(vc, self.local_vcs - 1)
        return 0

    def vc_for_stage(self, global_hops: int, local_hops_in_group: int, output_kind: PortKind) -> int:
        """Same as :meth:`vc_for_hop` but from explicit stage counters."""
        if output_kind is PortKind.GLOBAL:
            return min(global_hops, self.global_vcs - 1)
        if output_kind is PortKind.LOCAL:
            l = min(local_hops_in_group, 1)
            vc = l if global_hops == 0 else 2 * global_hops - 1 + l
            return min(vc, self.local_vcs - 1)
        return 0

    def max_vcs(self, kind: PortKind) -> int:
        if kind is PortKind.GLOBAL:
            return self.global_vcs
        if kind is PortKind.LOCAL:
            return self.local_vcs
        return self.injection_vcs


def validate_hop_sequences(
    hop_sequences: Iterable[Sequence[str]],
    *,
    local_vcs: int,
    global_vcs: int,
    context: str = "routing",
) -> None:
    """Check that every hop sequence walks strictly increasing buffer classes.

    This is the topology-generic deadlock-freedom argument, parameterized by
    the topology's :class:`~repro.topology.base.PathModel`: for each declared
    hop-kind sequence, the *capped* path-stage VC assignment (the exact
    formula the routing hot paths use, with the given VC budget) must visit
    ``(kind, vc)`` buffer classes in strictly increasing global order.  A
    violation means the VC budget is too small for the topology's paths —
    raising here at construction time replaces a silent deadlock risk at
    simulation time.
    """
    policy = VCAssignmentPolicy(
        local_vcs=local_vcs, global_vcs=global_vcs, injection_vcs=1
    )
    for hops in hop_sequences:
        ranks: List[int] = []
        g = 0
        l_in_group = 0
        for kind_name in hops:
            kind = PortKind.GLOBAL if kind_name == "global" else PortKind.LOCAL
            vc = policy.vc_for_stage(g, l_in_group, kind)
            ranks.append(class_rank(kind_name, vc))
            if kind_name == "global":
                g += 1
                l_in_group = 0
            else:
                l_in_group += 1
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            raise ValueError(
                f"{context}: hop sequence {'-'.join(hops)} does not walk "
                f"strictly increasing buffer classes under the VC budget "
                f"(local={local_vcs}, global={global_vcs}); the configuration "
                "is not deadlock-free"
            )


def validate_path_model(
    path_model: "PathModel",
    *,
    local_vcs: int,
    global_vcs: int,
    include_valiant: bool,
) -> None:
    """Validate a topology's declared MIN (and optionally Valiant) paths."""
    sequences = list(path_model.minimal_hop_kinds)
    if include_valiant:
        sequences.extend(path_model.valiant_hop_kinds)
    validate_hop_sequences(
        sequences,
        local_vcs=local_vcs,
        global_vcs=global_vcs,
        context=f"{path_model.topology} path model",
    )


def path_buffer_classes(hop_kinds: Sequence[str]) -> List[Tuple[str, int]]:
    """Buffer classes used along a path described by its hop kinds.

    ``hop_kinds`` is a sequence of ``"local"`` / ``"global"`` strings in path
    order.  Returns the (kind, vc) class of every hop under the path-stage
    assignment with unlimited VCs; used by the property tests to check that
    every allowed path visits classes in strictly increasing order.
    """
    classes: List[Tuple[str, int]] = []
    g = 0
    l_in_group = 0
    for kind in hop_kinds:
        if kind == "global":
            classes.append(("global", g))
            g += 1
            l_in_group = 0
        elif kind == "local":
            l = min(l_in_group, 1)
            vc = l if g == 0 else 2 * g - 1 + l
            classes.append(("local", vc))
            l_in_group += 1
        else:
            raise ValueError(f"unknown hop kind {kind!r}")
    return classes
