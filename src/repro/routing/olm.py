"""OLM: Opportunistic Local Misrouting (Garcia et al., ICPP 2013).

OLM is the paper's reference for *congestion-based in-transit* adaptive
routing.  The misrouting trigger compares credit-estimated occupancies of the
candidate output ports: a nonminimal port is preferred when its occupancy is
strictly below a percentage (the *relative misrouting threshold*, 50 % in
Table I) of the minimal port's occupancy.  Global misrouting can be chosen at
injection or after the first hop (PAR-style) with MM+L candidates; local
misrouting is applied in the intermediate and destination groups to avoid
saturated local links.

Like the contention mechanisms, OLM rides the topology-dispatched policy
layer of :class:`~repro.routing.adaptive.AdaptiveInTransitRouting`: the
MM+L policy above on group topologies (Dragonfly, flattened butterfly) and
the credit-triggered nonminimal ring-direction escape on the torus.

Because the trigger depends on buffer occupancy it shares the shortcomings
analysed in Section II of the paper: it reacts only after queues build up,
its reaction time grows with the buffer size (Figs. 7–8), and it occasionally
misroutes under uniform traffic when transient queues form (the latency gap
to MIN in Fig. 5a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.network.packet import Packet
from repro.routing.adaptive import AdaptiveInTransitRouting
from repro.routing.misrouting import MisrouteCandidate

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["OLMRouting"]


class OLMRouting(AdaptiveInTransitRouting):
    """Credit-occupancy-based in-transit adaptive routing."""

    name = "OLM"

    def __init__(self, topology, params, rng):
        super().__init__(topology, params, rng)
        self._olm_threshold = params.olm_congestion_threshold
        self._min_occupancy = 2 * params.packet_size_phits

    def _congestion_threshold(self) -> float:
        return self._olm_threshold

    def trigger_observation(self, router: "Router", packet) -> dict:
        """Credit-occupancy state OLM's trigger saw for the minimal port."""
        rid = router.router_id
        minimal_port = self.topology.minimal_output_port(rid, packet.dst)
        return {
            "signal": "occupancy",
            "port": minimal_port,
            "value": router.output_occupancy(minimal_port),
            "threshold": self._olm_threshold,
            "min_occupancy": self._min_occupancy,
        }

    def _credit_preferred(
        self, router: "Router", minimal_port: int, candidates: Sequence[MisrouteCandidate]
    ) -> List[MisrouteCandidate]:
        """Candidates whose occupancy is below ``threshold * occ(minimal)``.

        Misrouting is considered only once the minimal output holds at least
        a couple of packets: a relative comparison against an almost empty
        queue would divert traffic on every transient collision, which the
        real mechanism avoids by using credit round-trip information.
        """
        outs = router.output_ports
        out = outs[minimal_port]
        occ_min = out.buffer.committed_phits + out.credit_occupied
        if occ_min < self._min_occupancy:
            return []
        limit = self._olm_threshold * occ_min
        preferred: List[MisrouteCandidate] = []
        for candidate in candidates:
            out = outs[candidate.port]
            if out.buffer.committed_phits + out.credit_occupied < limit:
                preferred.append(candidate)
        return preferred

    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        preferred = self._credit_preferred(router, minimal_port, candidates)
        if not preferred:
            return None
        return preferred[int(self.rng.integers(0, len(preferred)))]

    def choose_local_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        preferred = self._credit_preferred(router, minimal_port, candidates)
        if not preferred:
            return None
        return preferred[int(self.rng.integers(0, len(preferred)))]
