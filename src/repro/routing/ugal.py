"""UGAL: Universal Globally-Adaptive Load-balanced source routing.

At injection the source router compares the minimal path against one
candidate Valiant path through a random intermediate router (Singh, 2005;
the UGAL-L variant using local output-queue estimates):

    q_min * len_min  >  q_val * len_val + T

where ``q`` is the credit-estimated occupancy of the first output port of
each path, ``len`` the path length in hops, and ``T`` a threshold in phits.
When the comparison holds the packet commits to the Valiant path; otherwise
it goes minimally.  Once chosen the route is oblivious (source routing).

UGAL is implemented against the topology ABC only — minimal ports, regions
and path lengths all come from the :class:`~repro.topology.base.Topology`
interface — so it runs on every registered topology (Dragonfly, flattened
butterfly, full mesh, torus).  Packets that commit to the minimal path stay
on Valiant leg 0, so on dateline-schedule topologies UGAL fits the same
ring-VC budget as VAL.  PiggyBacking (:mod:`repro.routing.piggyback`)
extends it with the Dragonfly-specific intra-group saturation ECN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.packet import Packet, RoutingPhase
from repro.routing.base import RoutingAlgorithm
from repro.routing.valiant import ValiantRouting

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["UGALRouting"]


class UGALRouting(ValiantRouting):
    """Source-adaptive MIN-vs-Valiant choice by queue-length comparison.

    At injection :meth:`on_inject` draws one candidate Valiant intermediate
    (outside the source region) and commits to the Valiant path only when
    ``q_min * len_min > q_val * len_val + T`` — minimal otherwise.  The
    committed route is then oblivious, which is why the in-transit hooks
    are inherited unchanged from :class:`ValiantRouting`.  Works on every
    registered topology; subclass hook: :meth:`prefers_valiant` (used by
    PB to add the saturation-ECN term).
    """

    name = "UGAL"
    needs_extra_local_vc = True

    # -------------------------------------------------------------- injection
    def on_inject(self, router: "Router", packet: Packet, cycle: int) -> None:
        RoutingAlgorithm.on_inject(self, router, packet, cycle)
        topo = self.topology
        src_region = topo.router_region(router.router_id)
        dst_region = topo.node_region(packet.dst)
        packet.phase = RoutingPhase.MINIMAL
        packet.valiant_router = None
        if dst_region == src_region:
            return

        # Candidate Valiant intermediate router (chosen before the comparison
        # so that q_val can be evaluated on an actual path).
        intermediate = self.random_intermediate_router(router.router_id)
        if self.prefers_valiant(router, packet, intermediate, cycle):
            packet.valiant_router = intermediate
            packet.phase = RoutingPhase.TO_INTERMEDIATE

    def prefers_valiant(
        self, router: "Router", packet: Packet, intermediate: int, cycle: int
    ) -> bool:
        """Whether the source-adaptive trigger commits to the Valiant path.

        Subclasses layer extra information on top (PB's saturation flags).
        """
        return self._ugal_prefers_valiant(router, packet, intermediate)

    def _ugal_prefers_valiant(
        self, router: "Router", packet: Packet, intermediate: int
    ) -> bool:
        """UGAL queue comparison at the source router."""
        topo = self.topology
        rid = router.router_id
        dst_router = topo.node_router(packet.dst)

        min_port = topo.minimal_output_port(rid, packet.dst)
        q_min = router.output_occupancy(min_port)
        len_min = len(topo.minimal_router_path(rid, dst_router)) - 1 + 1

        if intermediate == rid:
            val_port = min_port
            q_val = q_min
            len_val = len_min
        else:
            val_port = topo.minimal_route_to_router(rid, intermediate)
            q_val = router.output_occupancy(val_port)
            len_val = (
                len(topo.minimal_router_path(rid, intermediate))
                - 1
                + len(topo.minimal_router_path(intermediate, dst_router))
                - 1
                + 1
            )
        threshold = self.params.pb_offset_threshold * self.params.packet_size_phits
        return q_min * len_min > q_val * len_val + threshold
