"""VAL: Valiant (oblivious nonminimal) routing.

Every packet is first routed minimally to a uniformly random intermediate
*router* and from there minimally to its destination (Valiant, 1982; the
paper's implementation misroutes to an intermediate node/router rather than
an intermediate group, Section V-A).  The two minimal sub-paths give the
l-g-l-l-g-l worst case that motivates the extra local virtual channel of
Table I.  VAL is the throughput reference under adversarial traffic
(0.5 phits/node/cycle) and wastes half the bandwidth under uniform traffic.

The implementation is topology-agnostic: the intermediate router is drawn
uniformly outside the source *region* (the Dragonfly group, the flattened
butterfly row, the full-mesh router itself, the torus slab), which both
spreads load over other regions' links and keeps every Valiant path inside
the strictly increasing buffer-class schedule of
:mod:`repro.routing.deadlock` (a pure intra-region first leg followed by an
inter-region second leg would reuse a lower local class after a higher
one).  On dateline-schedule topologies the two legs instead map to the two
disjoint ring-VC class blocks: reaching the intermediate router bumps the
packet to leg 1 (see :meth:`ValiantRouting.on_packet_arrival`), which is
what makes torus Valiant paths deadlock-free with four ring VCs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.network.packet import Packet, RoutingPhase
from repro.routing.base import RoutingAlgorithm, RoutingDecision
from repro.topology.base import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["ValiantRouting"]


class ValiantRouting(RoutingAlgorithm):
    """Oblivious Valiant routing through a random intermediate router."""

    name = "VAL"
    needs_extra_local_vc = True
    #: In-transit decisions draw no randomness (the Valiant intermediate is
    #: chosen at injection), so rounds within a cycle may reuse them.
    decision_is_pure = True

    def __init__(self, topology, params, rng):
        super().__init__(topology, params, rng)
        self._nodes_per_router = topology.nodes_per_router
        self._routers_per_region = topology.routers_per_region
        self._nodes_per_region = topology.nodes_per_router * topology.routers_per_region
        #: Whether misrouting shows up on GLOBAL links (Dragonfly, flattened
        #: butterfly) or on LOCAL links (topologies without global ports,
        #: where the detour through the intermediate router *is* the local
        #: misroute).
        self._has_global_ports = topology.path_model.has_global_ports

    def random_intermediate_router(self, source_router: int) -> int:
        """Uniformly random intermediate router for ``source_router``.

        Delegates to
        :meth:`~repro.topology.base.Topology.valiant_intermediate_router`:
        the default draws uniformly outside the source region (restricting
        the intermediate to other regions keeps the Valiant paths within
        the hop shapes covered by the deadlock-free VC assignment, and
        matches the intent of global misrouting — spreading load over
        *other* regions' links); topologies whose schedule needs a
        structurally constrained intermediate override the hook (the fat
        tree draws a root).  Exactly one RNG draw either way.
        """
        return self.topology.valiant_intermediate_router(source_router, self.rng)

    def on_inject(self, router: "Router", packet: Packet, cycle: int) -> None:
        super().on_inject(router, packet, cycle)
        packet.valiant_router = self.random_intermediate_router(router.router_id)
        packet.phase = RoutingPhase.TO_INTERMEDIATE

    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        if (
            packet.phase is RoutingPhase.TO_INTERMEDIATE
            and packet.valiant_router == router.router_id
        ):
            packet.valiant_router = None
            packet.phase = RoutingPhase.MINIMAL
            # Dateline schedule: the second leg uses the disjoint higher
            # class block, and its first ring traversal starts fresh (the
            # first leg's dateline state must not leak into it).
            packet.vc_leg = 1
            packet.ring_dim = -1
            packet.ring_crossed = False
            packet.ring_dir = 0

    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        topo = self.topology
        phase = packet.phase
        dst = packet.dst
        if (
            phase is RoutingPhase.MINIMAL
            and router.router_id == self._node_rid[dst]
        ):
            return self.plain_decision(dst % self._nodes_per_router, 0)
        if phase is RoutingPhase.TO_INTERMEDIATE and packet.valiant_router is not None:
            out_port = topo.minimal_route_to_router(router.router_id, packet.valiant_router)
            kind = topo.port_kinds[out_port]
            if kind is PortKind.GLOBAL:
                # A global hop towards a region that is not the destination's
                # is the nonminimal detour the metrics count.
                nonminimal_global = (
                    topo.port_target_region(router.router_id, out_port)
                    != dst // self._nodes_per_region
                )
                return RoutingDecision(
                    output_port=out_port,
                    vc=self.next_vc(packet, kind),
                    nonminimal_global=nonminimal_global,
                )
            # Without global ports the detour to the intermediate router is a
            # local misroute whenever it leaves the minimal path.
            nonminimal_local = (
                not self._has_global_ports
                and out_port != topo.minimal_output_port(router.router_id, dst)
            )
            return RoutingDecision(
                output_port=out_port,
                vc=self.hop_vc(packet, router.router_id, out_port, kind),
                nonminimal_local=nonminimal_local,
            )
        return self.minimal_decision(router, packet)
