"""VAL: Valiant (oblivious nonminimal) routing.

Every packet is first routed minimally to a uniformly random intermediate
*router* and from there minimally to its destination (Valiant, 1982; the
paper's implementation misroutes to an intermediate node/router rather than
an intermediate group, Section V-A).  The two minimal sub-paths give the
l-g-l-l-g-l worst case that motivates the extra local virtual channel of
Table I.  VAL is the throughput reference under adversarial traffic
(0.5 phits/node/cycle) and wastes half the bandwidth under uniform traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.network.packet import Packet, RoutingPhase
from repro.routing.base import RoutingAlgorithm, RoutingDecision
from repro.topology.base import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["ValiantRouting"]


class ValiantRouting(RoutingAlgorithm):
    """Oblivious Valiant routing through a random intermediate router."""

    name = "VAL"
    needs_extra_local_vc = True
    #: In-transit decisions draw no randomness (the Valiant intermediate is
    #: chosen at injection), so rounds within a cycle may reuse them.
    decision_is_pure = True

    def __init__(self, topology, params, rng):
        super().__init__(topology, params, rng)
        self._nodes_per_router = topology.nodes_per_router
        self._nodes_per_group = topology.nodes_per_router * topology.routers_per_group

    def random_intermediate_router(self, source_router: int) -> int:
        """Uniformly random intermediate router outside the source group.

        Restricting the intermediate to other groups keeps the Valiant paths
        within the l-g-l-l-g-l shape covered by the deadlock-free VC
        assignment (and matches the intent of global misrouting: spreading
        load over *other* groups' links).
        """
        topo = self.topology
        src_group = topo.router_group(source_router)
        choice = int(self.rng.integers(0, topo.num_routers - topo.routers_per_group))
        group, position = divmod(choice, topo.routers_per_group)
        if group >= src_group:
            group += 1
        return topo.router_id(group, position)

    def on_inject(self, router: "Router", packet: Packet, cycle: int) -> None:
        super().on_inject(router, packet, cycle)
        packet.valiant_router = self.random_intermediate_router(router.router_id)
        packet.phase = RoutingPhase.TO_INTERMEDIATE

    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        if (
            packet.phase is RoutingPhase.TO_INTERMEDIATE
            and packet.valiant_router == router.router_id
        ):
            packet.valiant_router = None
            packet.phase = RoutingPhase.MINIMAL

    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        topo = self.topology
        phase = packet.phase
        dst = packet.dst
        if (
            phase is RoutingPhase.MINIMAL
            and router.router_id == dst // self._nodes_per_router
        ):
            return self.plain_decision(dst % self._nodes_per_router, 0)
        if phase is RoutingPhase.TO_INTERMEDIATE and packet.valiant_router is not None:
            out_port = topo.minimal_route_to_router(router.router_id, packet.valiant_router)
            kind = topo.port_kinds[out_port]
            nonminimal_global = (
                kind is PortKind.GLOBAL
                and topo.global_port_target_group(router.router_id, out_port)
                != dst // self._nodes_per_group
            )
            return RoutingDecision(
                output_port=out_port,
                vc=self.next_vc(packet, kind),
                nonminimal_global=nonminimal_global,
            )
        return self.minimal_decision(router, packet)
