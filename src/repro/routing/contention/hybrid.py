"""Hybrid: contention counters combined with credit occupancy (Section III-C).

Hybrid keeps one threshold for the contention counters and another (relative)
threshold for the output credits; traffic is diverted nonminimally when
*either* trigger fires.  Because each individual threshold can be set higher
than in the pure mechanisms while keeping the same overall sensitivity, the
excessive-misrouting problems of a too-low threshold are avoided.  The paper
reports that Hybrid peaks the throughput under uniform traffic at the cost of
slightly higher latency than Base/ECtN at low loads (it occasionally diverts
traffic on the credit criterion, like OLM).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.network.packet import Packet
from repro.routing.contention.base_contention import BaseContentionRouting
from repro.routing.misrouting import MisrouteCandidate

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["HybridContentionRouting"]


class HybridContentionRouting(BaseContentionRouting):
    """Contention OR congestion (credit) misrouting trigger."""

    name = "Hybrid"

    @property
    def contention_threshold(self) -> int:
        return self.params.hybrid_contention_threshold

    @property
    def congestion_threshold(self) -> float:
        return self.params.hybrid_congestion_threshold

    def trigger_observation(self, router: "Router", packet: Packet) -> dict:
        """Both Hybrid trigger inputs: the counter and the credit occupancy."""
        observation = super().trigger_observation(router, packet)
        observation["signal"] = "contention+congestion"
        observation["occupancy"] = router.output_occupancy(observation["port"])
        observation["congestion_threshold"] = self.congestion_threshold
        return observation

    def _credit_preferred(
        self, router: "Router", minimal_port: int, candidates: Sequence[MisrouteCandidate]
    ) -> List[MisrouteCandidate]:
        """OLM-style relative occupancy comparison with the Hybrid threshold."""
        threshold = self.congestion_threshold
        occ_min = router.output_occupancy(minimal_port)
        if occ_min < 2 * self.params.packet_size_phits:
            return []
        return [
            candidate
            for candidate in candidates
            if router.output_occupancy(candidate.port) < threshold * occ_min
        ]

    def _choose(
        self,
        router: "Router",
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
    ) -> Optional[MisrouteCandidate]:
        contention = self._contention_preferred(router, minimal_port, candidates)
        if contention:
            return self.pick_random(contention)
        return self.pick_random(self._credit_preferred(router, minimal_port, candidates))

    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        return self._choose(router, minimal_port, candidates)

    def choose_local_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        return self._choose(router, minimal_port, candidates)
