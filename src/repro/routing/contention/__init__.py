"""Contention-based misrouting triggers: the paper's contribution."""

from repro.routing.contention.base_contention import BaseContentionRouting
from repro.routing.contention.counters import ContentionCounters, ContentionTracker
from repro.routing.contention.ectn import ECtNRouting
from repro.routing.contention.hybrid import HybridContentionRouting

__all__ = [
    "ContentionCounters",
    "ContentionTracker",
    "BaseContentionRouting",
    "HybridContentionRouting",
    "ECtNRouting",
]
