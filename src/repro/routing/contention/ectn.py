"""ECtN: Explicit Contention Notification (Section III-D).

Every router keeps two arrays of per-global-link contention counters for its
group:

* the **partial** array, updated locally — incremented when a packet that
  must leave the group (remote destination) sits at the head of an injection
  queue or is received through a global input port, and decremented when that
  packet leaves the input queue;
* the **combined** array, the sum of the partial arrays of all routers of the
  group, refreshed every ``ectn_update_period`` cycles when the routers
  broadcast their partial arrays (the broadcast overhead is not simulated,
  matching the paper's methodology).

At injection, a packet whose minimal global link has a combined counter above
the combined threshold is misrouted through one of the current router's
global links whose combined counter is under the threshold.  For subsequent
hops (and for local misrouting) the ordinary per-output contention counters
of Base are used.  The group-wide view makes the counters statistically
significant even at low loads and lets routers misroute directly from the
injection queues, which gives ECtN the best latency of all mechanisms and a
perfectly flat response after the first broadcast following a traffic change
(Figs. 5–9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet
from repro.routing.base import UnsupportedTopologyError
from repro.routing.contention.base_contention import BaseContentionRouting
from repro.routing.misrouting import MisrouteCandidate
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.router import Router

__all__ = ["ECtNRouting"]


class ECtNRouting(BaseContentionRouting):
    """Contention-counter routing with explicit contention notification."""

    name = "ECtN"
    needs_post_cycle = True

    def __init__(self, topology: DragonflyTopology, params: SimulationParameters, rng):
        # The partial/combined arrays are indexed by group-local global-link
        # offsets, which only exist on the canonical Dragonfly (one global
        # link per group pair).  Base and Hybrid run on every topology with
        # an in-transit policy (flattened butterfly, torus), but ECtN's
        # broadcast structure does not generalize, so it gates itself on the
        # concrete Dragonfly even where AdaptiveInTransitRouting would
        # accept the topology.
        if not isinstance(topology, DragonflyTopology):
            raise UnsupportedTopologyError.for_mechanism(
                self.name,
                topology,
                "the explicit contention notification broadcasts "
                "per-global-link counter arrays over Dragonfly groups",
                "Base/Hybrid (contention triggers without the broadcast) "
                "or the topology-agnostic UGAL",
            )
        super().__init__(topology, params, rng)
        links = topology.global_links_per_group
        #: Partial arrays, one per router, indexed by group-local link offset.
        self.partial: Dict[int, List[int]] = {
            rid: [0] * links for rid in range(topology.num_routers)
        }
        #: Combined arrays, one per group (shared by the group's routers).
        self.combined: Dict[int, List[int]] = {
            g: [0] * links for g in range(topology.num_groups)
        }
        self._first_global_port = min(topology.global_ports)
        self._h = topology.config.h
        self._combined_threshold = params.ectn_combined_threshold
        # (group, dst_group) -> group-local link offset (static per topology).
        self._dest_offset_cache: Dict[int, int] = {}

    # ----------------------------------------------------------- thresholds
    @property
    def contention_threshold(self) -> int:
        return self.params.ectn_local_contention_threshold

    @property
    def combined_threshold(self) -> int:
        return self.params.ectn_combined_threshold

    def trigger_observation(self, router, packet) -> dict:
        """The local counter plus the ECtN combined-array threshold."""
        observation = super().trigger_observation(router, packet)
        observation["signal"] = "contention+ectn"
        observation["combined_threshold"] = self._combined_threshold
        return observation

    # ------------------------------------------------------------- link ids
    def link_offset_for_destination(self, group: int, dst_group: int) -> int:
        """Group-local offset of the global link from ``group`` to ``dst_group``."""
        gw_router, gw_port = self.topology.global_link_endpoint(group, dst_group)
        pos = self.topology.router_position(gw_router)
        return pos * self.topology.config.h + (gw_port - self._first_global_port)

    def link_offset_for_port(self, router_id: int, port: int) -> int:
        pos = self.topology.router_position(router_id)
        return pos * self.topology.config.h + (port - self._first_global_port)

    # -------------------------------------------------------------- tracking
    def _maybe_count_partial(self, router: "Router", packet: Packet) -> None:
        if packet.ectn_offset is not None:
            return
        group = self.topology.router_group(router.router_id)
        dst_group = self.topology.node_group(packet.dst)
        if dst_group == group:
            return
        offset = self.link_offset_for_destination(group, dst_group)
        self.partial[router.router_id][offset] += 1
        packet.ectn_offset = offset

    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        super().on_packet_arrival(router, port, vc, packet, cycle)
        if self.topology.port_kinds[port] is PortKind.GLOBAL:
            self._maybe_count_partial(router, packet)

    def on_packet_head(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        super().on_packet_head(router, port, vc, packet, cycle)
        if self.topology.port_kinds[port] is PortKind.INJECTION:
            self._maybe_count_partial(router, packet)

    def on_packet_leave_input(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        super().on_packet_leave_input(router, port, vc, packet, cycle)
        if packet.ectn_offset is not None:
            counts = self.partial[router.router_id]
            if counts[packet.ectn_offset] <= 0:
                raise RuntimeError("ECtN partial counter underflow")
            counts[packet.ectn_offset] -= 1
            packet.ectn_offset = None

    # -------------------------------------------------------------- broadcast
    def post_cycle(self, network: "Network", cycle: int) -> None:
        if cycle % self.params.ectn_update_period != 0:
            return
        topo = self.topology
        links = topo.global_links_per_group
        for group in range(topo.num_groups):
            combined = [0] * links
            for rid in topo.group_routers(group):
                partial = self.partial[rid]
                for i in range(links):
                    combined[i] += partial[i]
            self.combined[group] = combined

    def post_cycle_horizon(self, network: "Network", cycle: int) -> Optional[int]:
        """ECtN only acts on broadcast cycles: the next update-period multiple.

        Between broadcasts ``post_cycle`` is a no-op, so the time-warp engine
        only needs to land on every multiple of ``ectn_update_period`` — the
        broadcast there recomputes the combined arrays from the (possibly
        stale) partial counters exactly as the cycle-by-cycle engine would.
        """
        period = self.params.ectn_update_period
        remainder = cycle % period
        if remainder == 0:
            return cycle
        return cycle + (period - remainder)

    # -------------------------------------------------------------- triggers
    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        topo = self.topology
        if topo.port_kinds[port] is PortKind.INJECTION:
            rid = router.router_id
            group = rid // self._routers_per_group
            dst_group = packet.dst // self._nodes_per_group
            combined = self.combined[group]
            offset_key = group * topo.num_groups + dst_group
            min_offset = self._dest_offset_cache.get(offset_key)
            if min_offset is None:
                min_offset = self.link_offset_for_destination(group, dst_group)
                self._dest_offset_cache[offset_key] = min_offset
            threshold = self._combined_threshold
            if combined[min_offset] > threshold:
                pos_base = (rid % self._routers_per_group) * self._h - self._first_global_port
                preferred = [
                    candidate
                    for candidate in candidates
                    if candidate.kind is PortKind.GLOBAL
                    and combined[pos_base + candidate.port] < threshold
                ]
                chosen = self.pick_random(preferred)
                if chosen is not None:
                    return chosen
        # Fall back to the local (Base) counters for in-transit decisions.
        return super().choose_global_misroute(
            router, port, packet, minimal_port, candidates, cycle
        )
