"""Base: contention-counter misrouting trigger (Section III-B).

The packet at the head of an input queue is diverted to a nonminimal path
when the contention counter of its minimal output port exceeds the fixed
misrouting threshold ``th`` (Table I: ``th = 6`` at the paper scale).  The
nonminimal path is chosen uniformly at random among the available candidate
ports whose own contention counter is *under* the threshold.  The trigger
uses only local information and is completely independent of the buffer
size, which yields MIN-like latency under uniform traffic and an almost
immediate reaction to traffic-pattern changes (Figs. 5 and 7).

The trigger is policy-agnostic: on group topologies (Dragonfly, flattened
butterfly) it steers the MM+L global/local misroute candidates, and on the
torus it steers the nonminimal ring-direction escape — in every case the
packet is diverted only towards candidates whose own contention counter is
under the threshold (see :mod:`repro.routing.adaptive`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet
from repro.routing.adaptive import AdaptiveInTransitRouting
from repro.routing.contention.counters import ContentionTracker
from repro.routing.misrouting import MisrouteCandidate
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["BaseContentionRouting"]


class BaseContentionRouting(AdaptiveInTransitRouting):
    """Contention-counter based in-transit adaptive routing."""

    name = "Base"

    def __init__(self, topology: Topology, params: SimulationParameters, rng):
        super().__init__(topology, params, rng)
        self.tracker = ContentionTracker(topology)
        # Direct reference to the tracker's per-router counter objects: the
        # triggers read them for every blocked head on every round.
        self._counter_arrays = self.tracker._counters
        # Cache through the (possibly overridden) property so Hybrid/ECtN get
        # their own local thresholds; the parameters are immutable.
        self._threshold = self.contention_threshold

    # ------------------------------------------------------------- threshold
    @property
    def contention_threshold(self) -> int:
        return self.params.base_contention_threshold

    # ----------------------------------------------------------------- faults
    def attach_faults(self, faults) -> None:
        """Seed counter bias on degraded ports (degraded = high contention).

        A degraded link's counter starts at ``bias_packets`` instead of 0, so
        the contention trigger sees it as persistently loaded and steers
        packets away exactly like it would from a genuinely contended port.
        The bias is a constant baseline: increments/decrements stay balanced
        on top of it, so the counters never underflow.
        """
        super().attach_faults(faults)
        for (rid, port), deg in faults.degraded.items():
            self._counter_arrays[rid].counts[port] += deg.bias_packets

    # ----------------------------------------------------------------- hooks
    def on_packet_head(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        self.tracker.on_head(router, packet)

    def on_packet_leave_input(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        self.tracker.on_leave(router, packet)

    # -------------------------------------------------------------- triggers
    def contention_value(self, router: "Router", port: int) -> int:
        return self.tracker.value(router.router_id, port)

    def trigger_observation(self, router: "Router", packet: Packet) -> dict:
        """Contention-counter state the trigger saw for ``packet``'s minimal port.

        The minimal port is recomputed from the topology because at grant
        time ``contention_port`` has already been cleared by the tracker's
        leave hook; the counter value likewise excludes the departing
        packet (post-decrement semantics, identical in both backends).
        """
        rid = router.router_id
        minimal_port = self.topology.minimal_output_port(rid, packet.dst)
        return {
            "signal": "contention",
            "port": minimal_port,
            "value": self._counter_arrays[rid].counts[minimal_port],
            "threshold": self._threshold,
        }

    def _contention_preferred(
        self, router: "Router", minimal_port: int, candidates: Sequence[MisrouteCandidate]
    ) -> List[MisrouteCandidate]:
        """Candidates allowed by the contention trigger, or empty if no trigger."""
        threshold = self._threshold
        counts = self._counter_arrays[router.router_id].counts
        if counts[minimal_port] <= threshold:
            return []
        return [
            candidate for candidate in candidates if counts[candidate.port] < threshold
        ]

    def _choose_contention(
        self, router: "Router", minimal_port: int, candidates: Sequence[MisrouteCandidate]
    ) -> Optional[MisrouteCandidate]:
        """``pick_random(_contention_preferred(...))`` without the extra hops."""
        threshold = self._threshold
        counts = self._counter_arrays[router.router_id].counts
        if counts[minimal_port] <= threshold:
            return None
        preferred = [
            candidate for candidate in candidates if counts[candidate.port] < threshold
        ]
        if not preferred:
            return None
        return preferred[int(self.rng.integers(0, len(preferred)))]

    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        return self._choose_contention(router, minimal_port, candidates)

    def choose_local_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        return self._choose_contention(router, minimal_port, candidates)
