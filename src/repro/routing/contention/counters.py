"""Contention counters (Section III-B of the paper).

A router keeps one counter per output port.  When a packet reaches the head
of an input (or injection) buffer, the counter of its *minimal* output port
is incremented; it is decremented only when the packet leaves that input
buffer — even if the packet is eventually forwarded through a different
(nonminimal) port.  The counter therefore measures how many flows currently
*demand* each output, independently of buffer occupancy, which is precisely
what decouples the misrouting trigger from the buffer size.

:class:`ContentionCounters` is the per-router counter array;
:class:`ContentionTracker` owns one instance per router and implements the
increment/decrement protocol from the routing-algorithm hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router
    from repro.topology.base import Topology

__all__ = ["ContentionCounters", "ContentionTracker"]


class ContentionCounters:
    """Per-output-port contention counters of one router."""

    __slots__ = ("counts",)

    def __init__(self, num_ports: int):
        if num_ports < 1:
            raise ValueError("a router needs at least one port")
        self.counts: List[int] = [0] * num_ports

    def increment(self, port: int) -> None:
        self.counts[port] += 1

    def decrement(self, port: int) -> None:
        if self.counts[port] <= 0:
            raise RuntimeError(f"contention counter underflow on port {port}")
        self.counts[port] -= 1

    def value(self, port: int) -> int:
        return self.counts[port]

    def total(self) -> int:
        return sum(self.counts)

    def snapshot(self) -> List[int]:
        return list(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContentionCounters({self.counts})"


class ContentionTracker:
    """Maintains the contention counters of every router of a network."""

    def __init__(self, topology: "Topology"):
        self.topology = topology
        # Indexed by router id (router ids are dense), so the per-head hot
        # path reaches a counter array with one list index.
        self._counters: List[ContentionCounters] = [
            ContentionCounters(topology.router_radix)
            for _ in range(topology.num_routers)
        ]

    def counters(self, router_id: int) -> ContentionCounters:
        return self._counters[router_id]

    def value(self, router_id: int, port: int) -> int:
        return self._counters[router_id].value(port)

    # -- protocol -------------------------------------------------------------
    def on_head(self, router: "Router", packet: Packet) -> None:
        """A packet header reached the head of an input buffer of ``router``."""
        if packet.contention_port is not None:
            return  # already counted at this router (defensive; should not happen)
        minimal_port = self.topology.minimal_output_port(router.router_id, packet.dst)
        self._counters[router.router_id].counts[minimal_port] += 1
        packet.contention_port = minimal_port

    def on_leave(self, router: "Router", packet: Packet) -> None:
        """The packet's tail left the input buffer of ``router``."""
        if packet.contention_port is None:
            return
        self._counters[router.router_id].decrement(packet.contention_port)
        packet.contention_port = None
