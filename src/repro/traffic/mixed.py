"""Mixed traffic: a probabilistic blend of patterns (Fig. 6).

Figure 6 of the paper evaluates latency when the offered load is split
between ADV+1 and UN in varying proportions.  :class:`MixedTraffic` draws,
independently for every generated packet, which component pattern decides
its destination.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern

__all__ = ["MixedTraffic"]


class MixedTraffic(TrafficPattern):
    """Blend of patterns with per-packet probabilistic selection."""

    def __init__(
        self,
        topology: Topology,
        components: Sequence[Tuple[TrafficPattern, float]],
    ):
        super().__init__(topology)
        if not components:
            raise ValueError("MixedTraffic needs at least one component")
        weights = [w for _, w in components]
        if any(w < 0 for w in weights):
            raise ValueError("component weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("component weights must not all be zero")
        self.patterns: List[TrafficPattern] = [p for p, _ in components]
        self.probabilities: List[float] = [w / total for w in weights]
        self.name = "+".join(
            f"{p.name}:{prob:.0%}" for p, prob in zip(self.patterns, self.probabilities)
        )

    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        index = int(rng.choice(len(self.patterns), p=self.probabilities))
        return self.patterns[index].destination(src, cycle, rng)
