"""ADV+i: adversarial traffic (Section IV-A).

All nodes of group ``g`` send their traffic to uniformly random nodes of
group ``g + i``.  The single global link between the two groups becomes the
bottleneck of every minimal path, so minimal routing saturates at a tiny
fraction of the injection bandwidth and nonminimal (Valiant-like) routing is
required.  ``ADV+h`` additionally concentrates the minimal traffic of each
source group onto the local links towards one gateway router, the
pathological local-link saturation case that motivates local misrouting in
the intermediate group.
"""

from __future__ import annotations

import numpy as np

from repro.topology.dragonfly import DragonflyTopology
from repro.traffic.base import TrafficPattern

__all__ = ["AdversarialTraffic"]


class AdversarialTraffic(TrafficPattern):
    """ADV+offset: each group targets the group ``offset`` positions away."""

    def __init__(self, topology: DragonflyTopology, offset: int = 1):
        super().__init__(topology)
        if offset % topology.num_groups == 0:
            raise ValueError(
                "ADV offset must not be a multiple of the number of groups "
                "(the pattern would degenerate into intra-group traffic)"
            )
        self.offset = offset
        self.name = f"ADV+{offset}"

    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        topo = self.topology
        src_group = topo.node_group(src)
        dst_group = (src_group + self.offset) % topo.num_groups
        nodes_per_group = topo.config.nodes_per_group
        low = dst_group * nodes_per_group
        return self._random_node_excluding(low, low + nodes_per_group, src, rng)
