"""ADV+i: adversarial traffic (Section IV-A), generalized over regions.

All nodes of *region* ``r`` send their traffic to uniformly random nodes of
region ``r + i``.  The region mapping comes from the topology (see
:class:`repro.topology.base.Topology`): Dragonfly groups, flattened
butterfly rows, individual full-mesh routers, or torus slabs of the last
dimension.

On the Dragonfly the single global link between the two groups becomes the
bottleneck of every minimal path, so minimal routing saturates at a tiny
fraction of the injection bandwidth and nonminimal (Valiant-like) routing is
required; ``ADV+h`` additionally concentrates the minimal traffic of each
source group onto the local links towards one gateway router.  On the
flattened butterfly the same shift saturates the column links between the
two rows (one per column, each carrying all of its column's row-to-row
traffic), and on the full mesh it saturates the single direct link between
the two routers.  On the torus ``ADV+h`` resolves to the *tornado* offset
``dims[-1] // 2``: every packet takes the maximum number of same-direction
hops around the last ring, so dimension-order minimal routing loads one
ring direction with ``dims[-1] // 2`` overlapping flows per link while the
opposite direction idles — the same qualitative MIN-vs-VAL crossover in
every case.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern

__all__ = ["AdversarialTraffic"]


class AdversarialTraffic(TrafficPattern):
    """ADV+offset: each region targets the region ``offset`` positions away."""

    def __init__(self, topology: Topology, offset: int = 1):
        super().__init__(topology)
        if offset % topology.num_regions == 0:
            raise ValueError(
                "ADV offset must not be a multiple of the number of regions "
                "(the pattern would degenerate into intra-region traffic)"
            )
        self.offset = offset
        self.name = f"ADV+{offset}"

    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        topo = self.topology
        src_region = topo.node_region(src)
        dst_region = (src_region + self.offset) % topo.num_regions
        low, high = topo.region_node_range(dst_region)
        return self._random_node_excluding(low, high, src, rng)
