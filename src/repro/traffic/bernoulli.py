"""Bernoulli packet generation (Section IV-B).

Each source node generates packets according to a Bernoulli process with a
controllable injection probability expressed in phits/(node·cycle): with
packets of ``S`` phits and an offered load ``rho``, a node starts a new
packet in a cycle with probability ``rho / S``.  The generator is vectorised
over nodes with NumPy so that the per-cycle cost is dominated by the packets
actually generated rather than by the number of nodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.network.packet import Packet
from repro.topology.dragonfly import DragonflyTopology
from repro.traffic.base import TrafficPattern

__all__ = ["BernoulliTrafficGenerator"]


class BernoulliTrafficGenerator:
    """Generates packets for every node with a Bernoulli process."""

    def __init__(
        self,
        topology: DragonflyTopology,
        pattern: TrafficPattern,
        offered_load: float,
        packet_size_phits: int,
        rng: np.random.Generator,
    ):
        if not (0.0 <= offered_load <= 1.0):
            raise ValueError("offered load must be in [0, 1] phits/(node*cycle)")
        if packet_size_phits < 1:
            raise ValueError("packet size must be at least one phit")
        self.topology = topology
        self.pattern = pattern
        self.offered_load = offered_load
        self.packet_size_phits = packet_size_phits
        self.rng = rng
        self._packet_probability = offered_load / packet_size_phits
        self._num_nodes = topology.num_nodes
        self._next_pid = 0
        self.generated_packets = 0

    @property
    def packet_probability(self) -> float:
        """Per-cycle probability that a node starts a new packet."""
        return self._packet_probability

    def set_offered_load(self, offered_load: float) -> None:
        if not (0.0 <= offered_load <= 1.0):
            raise ValueError("offered load must be in [0, 1] phits/(node*cycle)")
        self.offered_load = offered_load
        self._packet_probability = offered_load / self.packet_size_phits

    def generate(self, cycle: int) -> List[Tuple[int, Packet]]:
        """Packets generated in ``cycle`` as ``(source_node, packet)`` pairs.

        One vectorized draw covers all nodes; the per-packet Python work is
        proportional to the packets actually generated, not to the number of
        nodes.  The RNG consumption order (one batched uniform draw, then one
        destination draw per generated packet in ascending source order) is
        part of the reproducibility contract — per-seed results are
        bit-identical across engine versions.
        """
        if self._packet_probability <= 0.0:
            return []
        rng = self.rng
        draws = rng.random(self._num_nodes)
        sources = np.flatnonzero(draws < self._packet_probability)
        if not sources.size:
            return []
        destination = self.pattern.destination
        size_phits = self.packet_size_phits
        pid = self._next_pid
        packets: List[Tuple[int, Packet]] = []
        for src in sources.tolist():
            packet = Packet(
                pid=pid,
                src=src,
                dst=destination(src, cycle, rng),
                size_phits=size_phits,
                creation_cycle=cycle,
            )
            pid += 1
            packets.append((src, packet))
        self.generated_packets += pid - self._next_pid
        self._next_pid = pid
        return packets
