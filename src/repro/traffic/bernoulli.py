"""Bernoulli packet generation (Section IV-B), block-sampled.

Each source node generates packets according to a Bernoulli process with a
controllable injection probability expressed in phits/(node·cycle): with
packets of ``S`` phits and an offered load ``rho``, a node starts a new
packet in a cycle with probability ``rho / S``.

RNG streams
-----------
The generator consumes two *named* random streams:

``arrival stream`` (``arrival_rng``)
    Decides *when* packets are generated.  It is consumed in blocks: one
    ``(block_cycles, num_nodes)`` uniform draw covers ``block_cycles``
    consecutive cycles.  NumPy fills that matrix row-major from the
    underlying bit stream, so the draw order is exactly the per-cycle
    ``random(num_nodes)`` order of a cycle-by-cycle consumer — the block
    size is a pure performance knob that never changes the sampled
    arrivals.
``destination/payload stream`` (``rng``)
    Decides *where* packets go: one destination draw per generated packet,
    in ascending (cycle, source) order.

Splitting the streams means the per-cycle generation cost is O(actual
packets) instead of O(nodes), and — crucially for the time-warp engine —
the generator can report :meth:`next_arrival_cycle` ahead of time without
perturbing any other random draw.

Blocks live on a fixed grid (block ``k`` covers cycles ``[k*B, (k+1)*B)``)
and are sampled lazily, in increasing order, only when a cycle of the block
is actually evaluated with a positive arrival probability.  That makes the
arrival stream's consumption identical whether the engine steps every cycle
or warps over quiet regions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.network.packet import Packet
from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern

__all__ = ["BernoulliTrafficGenerator"]


class BernoulliTrafficGenerator:
    """Generates packets for every node with a Bernoulli process."""

    __slots__ = (
        "topology",
        "pattern",
        "offered_load",
        "packet_size_phits",
        "rng",
        "arrival_rng",
        "block_cycles",
        "_packet_probability",
        "_num_nodes",
        "_next_pid",
        "generated_packets",
        "_block_index",
        "_block_uniforms",
        "_event_cycles",
        "_event_nodes",
        "_ptr",
        "_consumed_cycle",
    )

    def __init__(
        self,
        topology: Topology,
        pattern: TrafficPattern,
        offered_load: float,
        packet_size_phits: int,
        rng: np.random.Generator,
        arrival_rng: Optional[np.random.Generator] = None,
        block_cycles: int = 128,
    ):
        if not (0.0 <= offered_load <= 1.0):
            raise ValueError("offered load must be in [0, 1] phits/(node*cycle)")
        if packet_size_phits < 1:
            raise ValueError("packet size must be at least one phit")
        if block_cycles < 1:
            raise ValueError("block_cycles must be at least 1")
        self.topology = topology
        self.pattern = pattern
        self.offered_load = offered_load
        self.packet_size_phits = packet_size_phits
        #: Destination/payload stream: one draw per generated packet.
        self.rng = rng
        #: Arrival stream: one uniform per (cycle, node), consumed in blocks.
        #: When not given explicitly, an independent child stream is spawned
        #: so that arrival draws never interleave with destination draws.
        self.arrival_rng = arrival_rng if arrival_rng is not None else rng.spawn(1)[0]
        self.block_cycles = block_cycles
        self._packet_probability = offered_load / packet_size_phits
        self._num_nodes = topology.num_nodes
        self._next_pid = 0
        self.generated_packets = 0
        # -- pre-sampled arrival block (grid of ``block_cycles`` from cycle 0)
        #: Index of the currently sampled block, -1 before the first draw.
        self._block_index = -1
        #: Raw uniforms of the current block, kept so a mid-run offered-load
        #: change can re-threshold the not-yet-consumed cycles.
        self._block_uniforms: Optional[np.ndarray] = None
        #: Pending arrivals of the current block: parallel lists of absolute
        #: cycles (ascending) and source nodes, consumed through ``_ptr``.
        self._event_cycles: List[int] = []
        self._event_nodes: List[int] = []
        self._ptr = 0
        #: Highest cycle whose arrivals were handed out by ``generate``.
        self._consumed_cycle = -1

    @property
    def packet_probability(self) -> float:
        """Per-cycle probability that a node starts a new packet."""
        return self._packet_probability

    def set_offered_load(self, offered_load: float) -> None:
        """Change the offered load; already-sampled uniforms are re-thresholded.

        The raw uniforms of the current block are load-independent, so the
        not-yet-consumed cycles of the block are simply re-compared against
        the new probability — no arrival-stream draw is consumed or skipped.
        """
        if not (0.0 <= offered_load <= 1.0):
            raise ValueError("offered load must be in [0, 1] phits/(node*cycle)")
        self.offered_load = offered_load
        new_probability = offered_load / self.packet_size_phits
        if new_probability == self._packet_probability:
            return
        self._packet_probability = new_probability
        if self._block_uniforms is not None:
            self._extract_events(min_cycle=self._consumed_cycle + 1)

    # ------------------------------------------------------------- block state
    def _extract_events(self, min_cycle: int) -> None:
        """Re-derive the pending arrivals of the current block from its uniforms."""
        base = self._block_index * self.block_cycles
        rows, cols = np.nonzero(self._block_uniforms < self._packet_probability)
        if min_cycle > base:
            keep = rows >= (min_cycle - base)
            rows = rows[keep]
            cols = cols[keep]
        self._event_cycles = (rows + base).tolist()
        self._event_nodes = cols.tolist()
        self._ptr = 0

    def _sample_block(self, index: int) -> None:
        """Draw the uniforms of block ``index`` (one vectorised RNG call)."""
        self._block_uniforms = self.arrival_rng.random(
            (self.block_cycles, self._num_nodes)
        )
        self._block_index = index
        self._extract_events(min_cycle=self._consumed_cycle + 1)

    def _ensure_block(self, cycle: int) -> None:
        index = cycle // self.block_cycles
        if index > self._block_index:
            self._sample_block(index)

    # -------------------------------------------------------------- generation
    def next_arrival_cycle(self, cycle: int, limit: Optional[int] = None) -> Optional[int]:
        """Earliest cycle ``>= cycle`` with a pre-sampled arrival.

        Returns ``None`` when the arrival probability is zero or when no
        arrival exists before ``limit`` (blocks are never sampled at or
        beyond ``limit``, so a bounded caller cannot over-consume the
        arrival stream).
        """
        if self._packet_probability <= 0.0:
            return None
        block_cycles = self.block_cycles
        while True:
            if limit is not None and cycle >= limit:
                return None
            self._ensure_block(cycle)
            event_cycles = self._event_cycles
            n = len(event_cycles)
            ptr = self._ptr
            while ptr < n and event_cycles[ptr] < cycle:
                ptr += 1
            self._ptr = ptr
            if ptr < n:
                event = event_cycles[ptr]
                if limit is not None and event >= limit:
                    return None
                return event
            # The sampled blocks hold no arrival at or after ``cycle``:
            # continue the search in the first unsampled block.
            cycle = (self._block_index + 1) * block_cycles

    def generate(self, cycle: int) -> List[Tuple[int, Packet]]:
        """Packets generated in ``cycle`` as ``(source_node, packet)`` pairs.

        The per-cycle Python work is proportional to the packets actually
        generated.  The RNG consumption order (arrival stream row-major per
        block, one destination draw per generated packet in ascending source
        order) is part of the reproducibility contract — per-seed results
        are bit-identical across engine versions and block sizes.
        """
        if self._packet_probability <= 0.0:
            return []
        self._ensure_block(cycle)
        event_cycles = self._event_cycles
        n = len(event_cycles)
        ptr = self._ptr
        while ptr < n and event_cycles[ptr] < cycle:
            ptr += 1
        if ptr >= n or event_cycles[ptr] != cycle:
            self._ptr = ptr
            self._consumed_cycle = cycle
            return []
        event_nodes = self._event_nodes
        destination = self.pattern.destination
        rng = self.rng
        size_phits = self.packet_size_phits
        pid = self._next_pid
        packets: List[Tuple[int, Packet]] = []
        while ptr < n and event_cycles[ptr] == cycle:
            src = event_nodes[ptr]
            packet = Packet(
                pid=pid,
                src=src,
                dst=destination(src, cycle, rng),
                size_phits=size_phits,
                creation_cycle=cycle,
            )
            pid += 1
            packets.append((src, packet))
            ptr += 1
        self._ptr = ptr
        self._consumed_cycle = cycle
        self.generated_packets += pid - self._next_pid
        self._next_pid = pid
        return packets
