"""UN: uniform random traffic.

Every packet picks a destination uniformly at random among all other nodes.
Uniform traffic is the friendly case for minimal routing (Fig. 5a): the load
spreads evenly over local and global links and misrouting only wastes
bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import TrafficPattern

__all__ = ["UniformTraffic"]


class UniformTraffic(TrafficPattern):
    """Uniform random destinations over all nodes except the source."""

    name = "UN"

    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        return self._random_node_excluding(0, self.topology.num_nodes, src, rng)
