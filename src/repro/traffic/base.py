"""Traffic-pattern interface.

A traffic pattern maps a source node (and the current cycle, so that
time-varying patterns such as the transient switch of Figs. 7–9 can be
expressed) to a destination node.  Patterns are purely functional objects;
the Bernoulli injection process that decides *when* packets are generated
lives in :mod:`repro.traffic.bernoulli`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.topology.base import Topology

__all__ = ["TrafficPattern"]


class TrafficPattern(ABC):
    """Maps source nodes to destination nodes."""

    #: Human-readable name used in experiment tables.
    name: str = "abstract"

    def __init__(self, topology: Topology):
        self.topology = topology

    @abstractmethod
    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        """Destination node for a packet generated at ``src`` in ``cycle``.

        Must return a node id different from ``src`` whenever the topology
        has more than one node.
        """

    def describe(self) -> str:
        return self.name

    # -- helpers for subclasses ------------------------------------------------
    def _random_node_excluding(
        self, candidates_low: int, candidates_high: int, exclude: int, rng: np.random.Generator
    ) -> int:
        """Uniform node in ``[low, high)`` different from ``exclude``."""
        span = candidates_high - candidates_low
        if span <= 1:
            only = candidates_low
            if only == exclude:
                raise ValueError("cannot pick a destination different from the source")
            return only
        dst = int(rng.integers(candidates_low, candidates_high))
        while dst == exclude:
            dst = int(rng.integers(candidates_low, candidates_high))
        return dst
