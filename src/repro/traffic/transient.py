"""Transient traffic: switch from one pattern to another at a given cycle.

The transient experiments of the paper (Figs. 7–9) warm the network up with
uniform traffic and switch to ADV+1 at ``t = 0``, measuring how quickly each
misrouting trigger adapts.  :class:`TransientTraffic` expresses that switch;
the experiment runners translate the paper's ``t = 0`` into an absolute
simulation cycle.
"""

from __future__ import annotations

import numpy as np

from repro.topology.base import Topology
from repro.traffic.base import TrafficPattern

__all__ = ["TransientTraffic"]


class TransientTraffic(TrafficPattern):
    """Uses ``before`` until ``switch_cycle`` (exclusive), then ``after``."""

    def __init__(
        self,
        topology: Topology,
        before: TrafficPattern,
        after: TrafficPattern,
        switch_cycle: int,
    ):
        super().__init__(topology)
        self.before = before
        self.after = after
        self.switch_cycle = switch_cycle
        self.name = f"{before.name}->{after.name}@{switch_cycle}"

    def destination(self, src: int, cycle: int, rng: np.random.Generator) -> int:
        pattern = self.before if cycle < self.switch_cycle else self.after
        return pattern.destination(src, cycle, rng)

    def active_pattern(self, cycle: int) -> TrafficPattern:
        """The component pattern in effect at ``cycle``."""
        return self.before if cycle < self.switch_cycle else self.after
