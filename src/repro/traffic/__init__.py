"""Synthetic traffic: patterns (UN, ADV+i, mixed, transient) and injection."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.base import Topology
from repro.traffic.adversarial import AdversarialTraffic
from repro.traffic.base import TrafficPattern
from repro.traffic.bernoulli import BernoulliTrafficGenerator
from repro.traffic.mixed import MixedTraffic
from repro.traffic.transient import TransientTraffic
from repro.traffic.uniform import UniformTraffic

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "AdversarialTraffic",
    "MixedTraffic",
    "TransientTraffic",
    "BernoulliTrafficGenerator",
    "create_pattern",
]


def create_pattern(name: str, topology: Topology) -> TrafficPattern:
    """Create a traffic pattern from a paper-style name.

    ``"UN"`` gives uniform traffic, ``"ADV+i"`` (e.g. ``"ADV+1"``,
    ``"ADV+8"``) the adversarial pattern with region offset ``i``, and
    ``"ADV+h"`` the topology's hardest adversarial offset (the Dragonfly's
    ``h``; 1 elsewhere).
    """
    label = name.strip()
    upper = label.upper()
    if upper == "UN":
        return UniformTraffic(topology)
    if upper.startswith("ADV+"):
        suffix = label.split("+", 1)[1]
        offset = (
            topology.hard_adversarial_offset if suffix.lower() == "h" else int(suffix)
        )
        return AdversarialTraffic(topology, offset=offset)
    raise ValueError(f"Unknown traffic pattern {name!r} (expected 'UN' or 'ADV+i')")
