"""Simulation: cycle engine, simulator facade and result containers."""

from repro.simulation.engine import Engine, SimulationStallError
from repro.simulation.results import SteadyStateResult, TransientResult
from repro.simulation.simulator import Simulator

__all__ = [
    "Engine",
    "SimulationStallError",
    "Simulator",
    "SteadyStateResult",
    "TransientResult",
]
