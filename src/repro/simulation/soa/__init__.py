"""Struct-of-arrays simulation backend (``backend="soa"`` / ``"soa-numba"``).

See :mod:`repro.simulation.soa.engine` for the determinism contract and
:mod:`repro.simulation.soa.state` for the array layout.
"""

from repro.simulation.soa.engine import SoAEngine
from repro.simulation.soa.kernels import NUMBA_AVAILABLE, get_kernels
from repro.simulation.soa.state import RouterView, SoAState

__all__ = ["SoAEngine", "SoAState", "RouterView", "NUMBA_AVAILABLE", "get_kernels"]
