"""Struct-of-arrays router state for the SoA simulation backend.

:class:`SoAState` holds every hot per-(router, port, vc) quantity of the
network in flat Python lists indexed arithmetically:

* ``g = rid * P + port`` addresses per-port state (output buffers, links,
  credit aggregates, arrival/credit queues, allocator pointers);
* ``q = g * V + vc`` addresses per-VC state (input FIFOs, free space,
  head-seen flags, downstream credits), with ``V`` the network-wide maximum
  number of VCs on any port.

The layout is *copied from an already-built object network*
(:class:`~repro.network.network.Network`): every capacity, latency,
degradation factor, credit bias and upstream/downstream link resolved by the
object model's construction path is read back verbatim, so the SoA backend
shares the object model's build logic by construction instead of duplicating
it.  After the copy the object routers are never stepped again — the engine
(:mod:`repro.simulation.soa.engine`) mutates only this state.

Scalar-hot state intentionally lives in plain Python lists, not numpy
arrays: the inner loops index single elements, where list indexing is
several times cheaper than numpy scalar indexing.  Numpy enters only in the
batched broadcast kernels (:mod:`repro.simulation.soa.kernels`).

Routing algorithms never see these arrays directly.  They receive a
:class:`RouterView` — a façade exposing exactly the router surface the
routing layer reads (``router_id``, ``output_occupancy``, per-output-port
``buffer.committed_phits`` / ``credit_occupied`` / ``total_occupancy``) —
so every hook and ``select_output`` call observes live SoA state.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.network.network import Network

__all__ = ["SoAState", "RouterView"]


class _OutputBufferView:
    """Read-only ``OutputBuffer`` façade over the flat arrays (routing reads)."""

    __slots__ = ("_st", "_g")

    def __init__(self, st: "SoAState", g: int):
        self._st = st
        self._g = g

    @property
    def committed_phits(self) -> int:
        return self._st.out_committed[self._g]

    @property
    def free_phits(self) -> int:
        return self._st.out_free[self._g]

    def __len__(self) -> int:
        return len(self._st.out_q[self._g])


class _OutputPortView:
    """Read-only ``OutputPort`` façade over the flat arrays (routing reads)."""

    __slots__ = ("_st", "_g", "kind", "buffer")

    def __init__(self, st: "SoAState", g: int, kind):
        self._st = st
        self._g = g
        self.kind = kind
        self.buffer = _OutputBufferView(st, g)

    @property
    def credit_occupied(self) -> int:
        return self._st.credit_occ[self._g]

    @property
    def link_busy_until(self) -> int:
        return self._st.link_busy[self._g]

    @property
    def max_credits(self) -> List[int]:
        st = self._st
        base = self._g * st.V
        return st.max_credits[base : base + st.down_nvcs[self._g]]

    def total_occupancy(self) -> int:
        st = self._st
        return st.out_committed[self._g] + st.credit_occ[self._g]


class RouterView:
    """The router surface exposed to routing algorithms by the SoA backend.

    Covers every attribute the routing layer reads from a ``Router`` (grepped
    across ``repro.routing``): ``router_id``, ``output_occupancy(port)``,
    ``output_ports[p].{kind, buffer.committed_phits, credit_occupied,
    total_occupancy}``, plus ``group``/``position`` for diagnostics.
    """

    __slots__ = ("_st", "router_id", "_base", "output_ports", "topology")

    def __init__(self, st: "SoAState", rid: int):
        self._st = st
        self.router_id = rid
        self._base = rid * st.P
        self.topology = st.topology
        self.output_ports = [
            _OutputPortView(st, self._base + port, st.port_kinds[port])
            for port in range(st.P)
        ]

    def output_occupancy(self, port: int) -> int:
        st = self._st
        g = self._base + port
        return st.out_committed[g] + st.credit_occ[g]

    @property
    def group(self) -> int:
        return self.topology.router_region(self.router_id)

    @property
    def position(self) -> int:
        return self.topology.router_position(self.router_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RouterView(id={self.router_id})"


class SoAState:
    """Flat struct-of-arrays copy of a built object network (see module doc)."""

    __slots__ = (
        "topology",
        "R",
        "P",
        "V",
        "port_kinds",
        "kind_is_injection",
        "kind_is_global",
        # per-q (R * P * V)
        "in_q",
        "in_free",
        "head_seen",
        "credits",
        "max_credits",
        # per-g (R * P)
        "arrivals",
        "in_nvcs",
        "up_g",
        "up_rid",
        "up_lat",
        "out_committed",
        "out_free",
        "out_q",
        "pipeline",
        "link_busy",
        "link_lat",
        "ser_fac",
        "down_rid",
        "down_port",
        "down_nvcs",
        "credit_occ",
        "pending_credits",
        "cap_sum",
        "in_ptr",
        "out_ptr",
        # per-rid
        "occ",
        "new_heads",
        "arr_ports",
        "cred_ports",
        "busy_ports",
        "next_begin",
        "next_transmit",
        "alloc_nvc",
        "alloc_clean",
        "active",
        "active_flag",
        "unsorted",
        "views",
        "node_rid",
    )

    def __init__(self, network: Network):
        from repro.network.router import _NO_EVENT
        from repro.topology.base import PortKind

        topo = network.topology
        self.topology = topo
        R = self.R = topo.num_routers
        P = self.P = topo.router_radix
        self.port_kinds = tuple(topo.port_kinds)
        self.kind_is_injection = tuple(
            k is PortKind.INJECTION for k in self.port_kinds
        )
        self.kind_is_global = tuple(k is PortKind.GLOBAL for k in self.port_kinds)

        # Network-wide maximum VCs per port (fault runs add the escape VC on
        # router-to-router links, so read the built ports, not the params).
        V = self.V = max(
            len(ip.vcs) for router in network.routers for ip in router.input_ports
        )
        nG = R * P
        nQ = nG * V

        # -- per-q -----------------------------------------------------------
        self.in_q: List[Optional[deque]] = [None] * nQ
        self.in_free = [0] * nQ
        self.head_seen = [False] * nQ
        self.credits = [0] * nQ
        self.max_credits = [0] * nQ

        # -- per-g -----------------------------------------------------------
        self.arrivals = [deque() for _ in range(nG)]
        self.in_nvcs = [0] * nG
        self.up_g = [-1] * nG
        self.up_rid = [-1] * nG
        self.up_lat = [1] * nG
        self.out_committed = [0] * nG
        self.out_free = [0] * nG
        self.out_q = [deque() for _ in range(nG)]
        self.pipeline = [deque() for _ in range(nG)]
        self.link_busy = [0] * nG
        self.link_lat = [1] * nG
        self.ser_fac = [1] * nG
        self.down_rid = [-1] * nG
        self.down_port = [-1] * nG
        self.down_nvcs = [1] * nG
        self.credit_occ = [0] * nG
        self.pending_credits = [deque() for _ in range(nG)]
        self.cap_sum = [0] * nG
        self.in_ptr = [0] * nG
        self.out_ptr = [0] * nG

        # -- per-rid ---------------------------------------------------------
        self.occ: List[list] = [[] for _ in range(R)]
        self.new_heads: List[list] = [[] for _ in range(R)]
        self.arr_ports: List[list] = [[] for _ in range(R)]
        self.cred_ports: List[list] = [[] for _ in range(R)]
        self.busy_ports: List[list] = [[] for _ in range(R)]
        self.next_begin = [_NO_EVENT] * R
        self.next_transmit = [_NO_EVENT] * R
        self.alloc_nvc = [1] * R
        # "Clean" routers proved unable to act (no grant, no RNG draw) at
        # their last allocation; the engine skips their allocate phase until
        # an event that could change the outcome clears the flag.
        self.alloc_clean = [False] * R
        self.active: List[int] = []
        self.active_flag = [False] * R
        self.unsorted = False

        # -- copy the built configuration ------------------------------------
        for router in network.routers:
            rid = router.router_id
            base = rid * P
            self.alloc_nvc[rid] = max(len(ip.vcs) for ip in router.input_ports)
            for port, ip in enumerate(router.input_ports):
                g = base + port
                self.in_nvcs[g] = len(ip.vcs)
                if ip.upstream is not None:
                    up_rid, up_port = ip.upstream
                    self.up_rid[g] = up_rid
                    self.up_g[g] = up_rid * P + up_port
                    self.up_lat[g] = ip.upstream_latency
                for vc, ivc in enumerate(ip.vcs):
                    q = g * V + vc
                    self.in_q[q] = deque()
                    self.in_free[q] = ivc.buffer.free_phits
            for port, op in enumerate(router.output_ports):
                g = base + port
                self.out_free[g] = op.buffer.free_phits
                self.link_lat[g] = op.link_latency
                self.ser_fac[g] = op.serialize_factor
                # Degraded links carry a static credit-occupied bias.
                self.credit_occ[g] = op.credit_occupied
                self.down_nvcs[g] = len(op.credits)
                self.cap_sum[g] = sum(op.max_credits)
                if op.neighbor is not None:
                    self.down_rid[g], self.down_port[g] = op.neighbor
                for vc in range(len(op.credits)):
                    q = g * V + vc
                    self.credits[q] = op.credits[vc]
                    self.max_credits[q] = op.max_credits[vc]

        self.views = [RouterView(self, rid) for rid in range(R)]
        # Node -> router id, so the injection pass needs no object chain.
        self.node_rid = [node.router.router_id for node in network.nodes]

    # ------------------------------------------------------------- inspection
    def total_buffered_packets(self) -> int:
        """Packets inside the network (input/output buffers, pipelines, links).

        Mirrors ``Network.total_buffered_packets`` over the flat state.
        """
        n = 0
        for dq in self.in_q:
            if dq:
                n += len(dq)
        for dq in self.out_q:
            n += len(dq)
        for dq in self.pipeline:
            n += len(dq)
        for dq in self.arrivals:
            n += len(dq)
        return n
