"""Struct-of-arrays simulation engine — a transcription of ``Engine.step``.

:class:`SoAEngine` advances the network through *exactly* the same sequence
of state changes, routing-hook invocations and RNG draws as the object
engine (:class:`repro.simulation.engine.Engine`), but reads and writes the
flat arrays of :class:`~repro.simulation.soa.state.SoAState` instead of
chasing ``Router``/``InputPort``/``OutputPort`` objects.  The speed comes
from three places:

* **flat state** — the begin/commit/transmit phases are integer arithmetic
  on Python lists instead of attribute loads across an object graph;
* **decision capture** — routing decisions are classified once per buffer
  head instead of re-derived from scratch every allocation round.  Heads
  whose decision cannot change while they wait (ejection, towards-
  intermediate, pure mechanisms) carry a cached
  :class:`~repro.network.allocator.AllocationRequest`; heads governed by an
  adaptive trigger carry their (static) candidate list and VC assignments,
  and only the trigger itself — a couple of counter comparisons and at most
  one RNG draw — runs per round, exactly as many times and in exactly the
  same order as the object model's ``select_output`` calls;
* **batched broadcast kernels** — PB's saturation scan and ECtN's
  combined-counter reduction run as numpy (optionally numba) kernels over
  gathered arrays (:mod:`repro.simulation.soa.kernels`);
* **clean-router skipping** — an allocation pass that produced no grant and
  consumed no RNG draw is a pure function of state that only a known set of
  events can change (a credit return or link arrival at the router, an
  output-buffer drain, a new buffer head, an ECtN broadcast).  The router is
  marked *clean* and its allocate phase is skipped until one of those events
  fires; the skipped evaluations are observationally identical no-ops, so
  results and RNG streams are unchanged.  Under saturation — where most
  heads are blocked on credits for long stretches — this removes the bulk
  of the per-cycle work.

Buffer-head keys are flat integers ``k = port * V + vc`` (their numeric
order equals the object model's ``(port, vc)`` tuple order), and captured
requests are plain tuples ``(in_port, in_vc, out_port, size, decision,
out_g, credit_q)`` whose last two fields precompute the admission-check
indices.  ``AllocationRequest`` is a NamedTuple with the same first five
fields, so the transcribed separable allocator accepts both shapes.

Allocation modes
----------------
``MODE_PURE``
    Healthy runs of the pure mechanisms (MIN, VAL, UGAL, PB):
    ``decision_is_pure`` guarantees ``select_output`` has no side effects
    and depends only on state that is constant while a packet waits at a
    buffer head, so it is evaluated once per head and the rounds reduce to
    admission checks plus the separable allocator.
``MODE_FAST``
    Healthy runs of the in-transit adaptive family (OLM, Base, Hybrid,
    ECtN): the per-head taxonomy above, with the trigger transcribed from
    the mechanism's ``choose_*`` hooks against the flat occupancies and
    contention counters.
``MODE_GENERIC``
    Everything else (fault runs, ring-escape/torus and uplink-multipath/
    fat-tree policies, third-party mechanisms): ``routing.select_output``
    is called per round on a
    :class:`~repro.simulation.soa.state.RouterView`, replicating the object
    allocate loop verbatim — still faster than the object engine thanks to
    the flat begin/commit/transmit phases.

Every deviation from ``Engine``/``Router`` behaviour is a bug; the golden,
time-warp and property suites assert bit-identical results.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import List, Optional

import numpy as np

from repro.network.allocator import AllocationRequest
from repro.network.router import _NO_EVENT
from repro.network.packet import RoutingPhase
from repro.routing.base import RoutingDecision
from repro.routing.minimal import MinimalRouting
from repro.routing.valiant import ValiantRouting
from repro.routing.ugal import UGALRouting
from repro.routing.piggyback import PiggybackRouting
from repro.routing.olm import OLMRouting
from repro.routing.contention.base_contention import BaseContentionRouting
from repro.routing.contention.hybrid import HybridContentionRouting
from repro.routing.contention.ectn import ECtNRouting
from repro.simulation.engine import Engine, SimulationStallError, ENGINE_STATS
from repro.simulation.soa.kernels import get_kernels
from repro.simulation.soa.state import SoAState
from repro.topology.base import PortKind

__all__ = ["SoAEngine"]

_node_id = attrgetter("node_id")
_GLOBAL = PortKind.GLOBAL
_LOCAL = PortKind.LOCAL
_TO_INTERMEDIATE = RoutingPhase.TO_INTERMEDIATE

# Allocation modes (see module docstring).
MODE_GENERIC = 0
MODE_PURE = 1
MODE_FAST = 2

# Head-decision categories of MODE_FAST.  One category per head suffices:
# the local-misroute gate requires ``current_group == dst_group or
# global_hops == 1`` while the global gates require ``dst_group !=
# current_group and global_hops == 0``, so a head can never fall from a
# failed global gate into the local gate — only into the minimal fallback.
CAT_FIXED = 0  # decision constant while the head waits (cached request)
CAT_FORCED = 1  # committed MM+L proxy: forced global hop, trigger per round
CAT_GLOBAL = 2  # source-group global-misroute gate, trigger per round
CAT_LOCAL = 3  # local-misroute gate, trigger per round

# Trigger transcriptions of MODE_FAST.
MECH_OLM = 0
MECH_BASE = 1
MECH_HYBRID = 2
MECH_ECTN = 3

_FAST_MECHS = {
    OLMRouting: MECH_OLM,
    BaseContentionRouting: MECH_BASE,
    HybridContentionRouting: MECH_HYBRID,
    ECtNRouting: MECH_ECTN,
}
_PURE_MECHS = (MinimalRouting, ValiantRouting, UGALRouting, PiggybackRouting)


class SoAEngine(Engine):
    """Drop-in :class:`Engine` over :class:`SoAState` (see module doc)."""

    __slots__ = (
        "_st",
        "_mode",
        "_mech",
        "_kernels",
        "_use_numba",
        "_routing",
        "_notify_arrival",
        "_notify_head",
        "_notify_leave",
        "_speedup",
        "_router_latency",
        "_pure_decisions",
        "_dlv",
        "_drp",
        # per-q decision capture (MODE_PURE / MODE_FAST)
        "_dreq",
        "_dcat",
        "_dcand",
        "_dcandg",
        "_dgvc",
        "_dlvc",
        "_dminport",
        "_dgrp",
        "_dminoff",
        "_dposbase",
        "_dinj",
        # MODE_FAST trigger constants
        "_counters",
        "_cth",
        "_hyb_cong",
        "_olm_th",
        "_olm_min_occ",
        "_pkt2",
        "_ectn_cth",
        # post-cycle transcription
        "_soa_post",
        "_soa_post_horizon",
        "_pb_gidx",
        "_pb_caps",
        "_pb_occ",
        "_pb_links",
        "_pb_groups",
        "_pb_frac",
        "_pb_delay",
        "_ectn_group_rids",
        "_ectn_period",
        "_allocate",
        "_draws",
    )

    def __init__(
        self,
        network,
        traffic,
        metrics=None,
        stall_watchdog_cycles: Optional[int] = 20_000,
        time_warp: bool = True,
        faults=None,
        use_numba: bool = False,
    ):
        super().__init__(
            network,
            traffic,
            metrics=metrics,
            stall_watchdog_cycles=stall_watchdog_cycles,
            time_warp=time_warp,
            faults=faults,
        )
        self._use_numba = use_numba
        self._kernels = get_kernels(use_numba)
        st = self._st = SoAState(network)
        routing = self._routing = network.routing
        proto = network.routers[0]
        self._notify_arrival = proto._notify_arrival
        self._notify_head = proto._notify_head
        self._notify_leave = proto._notify_leave
        self._speedup = proto._speedup
        self._router_latency = proto._router_latency
        self._pure_decisions = routing.decision_is_pure
        self._dlv: List = []
        self._drp: List = []
        self._draws = 0

        rcls = type(routing)
        if (
            faults is None
            and rcls in _FAST_MECHS
            and not routing._ring_escape
            # The uplink-multipath policy (fat tree) has no MM+L taxonomy to
            # capture; its per-up-hop trigger runs through the generic path,
            # which replicates the object allocate loop and stays
            # bit-identical by construction.
            and not routing._uplink_multipath
        ):
            self._mode = MODE_FAST
            self._mech = _FAST_MECHS[rcls]
            self._allocate = self._allocate_fast
        elif faults is None and rcls in _PURE_MECHS:
            self._mode = MODE_PURE
            self._mech = -1
            self._allocate = self._allocate_pure
        else:
            self._mode = MODE_GENERIC
            self._mech = -1
            self._allocate = self._allocate_generic

        nQ = st.R * st.P * st.V
        if self._mode != MODE_GENERIC:
            self._dreq: List[Optional[AllocationRequest]] = [None] * nQ
        if self._mode == MODE_FAST:
            self._dcat = [CAT_FIXED] * nQ
            self._dcand: List = [None] * nQ
            self._dcandg: List = [None] * nQ
            self._dgvc = [0] * nQ
            self._dlvc = [0] * nQ
            self._dminport = [0] * nQ
            self._dgrp = [0] * nQ
            self._dminoff = [0] * nQ
            self._dposbase = [0] * nQ
            self._dinj = [False] * nQ
            params = routing.params
            self._pkt2 = 2 * params.packet_size_phits
            if self._mech == MECH_OLM:
                self._olm_th = routing._olm_threshold
                self._olm_min_occ = routing._min_occupancy
            else:
                self._counters = routing._counter_arrays
                self._cth = routing._threshold
                if self._mech == MECH_HYBRID:
                    self._hyb_cong = routing.congestion_threshold
                elif self._mech == MECH_ECTN:
                    self._ectn_cth = routing._combined_threshold

        # The engine never steps the object routers, so a mechanism's
        # post_cycle hook would observe stale objects.  The two hooks of the
        # repo (PB, ECtN) are transcribed against the flat state; anything
        # else must use the object backend.
        if self._post_cycle is not None:
            hook = rcls.post_cycle
            if hook is PiggybackRouting.post_cycle:
                self._build_pb_tables()
                self._soa_post = self._pb_post_cycle
                self._soa_post_horizon = self._pb_post_horizon
            elif hook is ECtNRouting.post_cycle:
                topo = st.topology
                self._ectn_group_rids = [
                    [router.router_id for router in network.group_routers(group)]
                    for group in range(topo.num_groups)
                ]
                self._ectn_period = routing.params.ectn_update_period
                self._soa_post = self._ectn_post_cycle
                self._soa_post_horizon = self._ectn_post_horizon
            else:
                raise ValueError(
                    f"backend 'soa' has no transcription of the post_cycle hook "
                    f"of {rcls.__name__}; use backend='object'"
                )

    # ------------------------------------------------------------------ warp
    def run(self, cycles: int) -> None:
        """Same control flow as ``Engine.run``; see that docstring.

        Only the post-cycle horizon consultation differs: the object hook
        reads ``network._active_routers``, which the SoA backend keeps empty,
        so the transcribed horizon reads the SoA active set instead.
        """
        end = self.cycle + cycles
        start_cycle = self.cycle
        skipped_before = self.cycles_skipped
        self._hint_valid = False
        try:
            if not self.time_warp:
                while self.cycle < end:
                    self.step()
                return
            traffic = self.traffic
            faults = self.faults
            while self.cycle < end:
                cycle = self.cycle
                if self._hint_valid:
                    horizon = self._hint_router_event
                    node_hint = self._hint_node_injection
                    if node_hint < horizon:
                        horizon = node_hint
                    if faults is not None:
                        fault_event = faults.pending_event_cycle
                        if fault_event < horizon:
                            horizon = fault_event
                    if horizon > cycle:
                        if self._post_cycle is not None:
                            hook = self._soa_post_horizon(cycle)
                            if hook is not None and hook < horizon:
                                horizon = hook
                        arrival = traffic.next_arrival_cycle(cycle, end)
                        if arrival is not None and arrival < horizon:
                            horizon = arrival
                else:
                    horizon = self._work_horizon(cycle, end)
                if horizon <= cycle:
                    self.step()
                    continue
                target = horizon if horizon < end else end
                watchdog = self.stall_watchdog_cycles
                if watchdog is not None:
                    deadline = self._last_progress_cycle + watchdog
                    if target > deadline:
                        if deadline <= cycle:
                            self._check_watchdog(cycle)
                            continue
                        target = deadline
                if self.obs is not None:
                    self.obs.on_warp(cycle, target)
                self.cycles_skipped += target - cycle
                self.cycle = target
        finally:
            advanced = self.cycle - start_cycle
            skipped = self.cycles_skipped - skipped_before
            ENGINE_STATS.cycles_executed += advanced - skipped
            ENGINE_STATS.cycles_skipped += skipped

    def _work_horizon(self, cycle: int, end: int) -> int:
        st = self._st
        horizon = end
        next_begin = st.next_begin
        next_transmit = st.next_transmit
        occ = st.occ
        for rid in st.active:
            if occ[rid]:
                return cycle
            begin = next_begin[rid]
            transmit = next_transmit[rid]
            event = begin if begin < transmit else transmit
            if event <= cycle:
                return cycle
            if event < horizon:
                horizon = event
        for node in self.network._active_nodes:
            injection = node.next_injection_cycle
            if injection <= cycle:
                return cycle
            if injection < horizon:
                horizon = injection
        if self._post_cycle is not None:
            hook = self._soa_post_horizon(cycle)
            if hook is not None:
                if hook <= cycle:
                    return cycle
                if hook < horizon:
                    horizon = hook
        arrival = self.traffic.next_arrival_cycle(cycle, end)
        if arrival is not None:
            if arrival <= cycle:
                return cycle
            if arrival < horizon:
                horizon = arrival
        if self.faults is not None:
            fault_event = self.faults.pending_event_cycle
            if fault_event <= cycle:
                return cycle
            if fault_event < horizon:
                horizon = fault_event
        return horizon

    # ------------------------------------------------------------------ step
    def step(self) -> None:
        """One cycle — the same five phases as ``Engine.step``."""
        cycle = self.cycle
        st = self._st
        network = self.network
        metrics = self.metrics
        obs = self.obs

        # 0. scheduled topology changes (fault epochs).
        faults = self.faults
        if faults is not None and faults.pending_event_cycle <= cycle:
            if faults.apply_due(cycle) and metrics is not None:
                metrics.on_fault_epoch(cycle)

        # 1. traffic generation (activates the source nodes).
        nodes = network.nodes
        for src, packet in self.traffic.generate(cycle):
            nodes[src].enqueue(packet)
            if metrics is not None:
                metrics.record_generated(packet)

        # 2. injection from the backlogged source queues, in node-id order.
        node_hint = _NO_EVENT
        active_nodes = network._active_nodes
        if active_nodes:
            if network._nodes_unsorted:
                active_nodes.sort(key=_node_id)
                network._nodes_unsorted = False
            backlogged = []
            for node in active_nodes:
                if cycle >= node.next_injection_cycle:
                    self._try_inject(node, cycle)
                if node.source_queue:
                    backlogged.append(node)
                    injection = node.next_injection_cycle
                    if injection < node_hint:
                        node_hint = injection
                else:
                    node.active = False
            network._active_nodes = backlogged

        # 3. fused router phases over the active set, in router-id order.
        delivered_now = 0
        dropped_now = 0
        visited_routers = 0
        active = st.active
        if active:
            if st.unsorted:
                active.sort()
                st.unsorted = False
            allocate = self._allocate
            next_begin = st.next_begin
            next_transmit = st.next_transmit
            occ = st.occ
            clean = st.alloc_clean
            dlv = self._dlv
            drp = self._drp
            snapshot = active[:]
            visited_routers = len(snapshot)
            for rid in snapshot:
                if next_begin[rid] <= cycle:
                    self._begin(rid, cycle)
                if occ[rid] and not clean[rid]:
                    allocate(rid, cycle)
                if next_transmit[rid] <= cycle:
                    self._transmit(rid, cycle)
                if dlv:
                    delivered_now += len(dlv)
                    if metrics is not None:
                        for packet in dlv:
                            metrics.record_delivery(packet, cycle)
                    if obs is not None:
                        for packet in dlv:
                            obs.record_delivery(packet, cycle)
                    dlv.clear()
                if faults is not None and drp:
                    dropped_now += len(drp)
                    if metrics is not None:
                        for packet in drp:
                            metrics.record_dropped(packet, cycle)
                    if obs is not None:
                        for packet in drp:
                            obs.record_dropped(packet, cycle)
                    drp.clear()

        # 4. network-wide routing hook (transcribed PB / ECtN broadcasts).
        if self._post_cycle is not None:
            self._soa_post(cycle)

        if delivered_now:
            self.delivered_packets += delivered_now
            self._last_progress_cycle = cycle
        if dropped_now:
            self.dropped_packets += dropped_now
            self._last_progress_cycle = cycle

        # 5. retire idle routers; yield the router half of the warp horizon.
        router_hint = _NO_EVENT
        current = st.active
        if current:
            still_active = []
            flags = st.active_flag
            next_begin = st.next_begin
            next_transmit = st.next_transmit
            occ = st.occ
            for rid in current:
                if occ[rid]:
                    still_active.append(rid)
                    router_hint = -1
                else:
                    begin = next_begin[rid]
                    transmit = next_transmit[rid]
                    event = begin if begin < transmit else transmit
                    if event >= _NO_EVENT:
                        flags[rid] = False
                    else:
                        still_active.append(rid)
                        if event < router_hint:
                            router_hint = event
            st.active = still_active

        self._hint_router_event = router_hint
        self._hint_node_injection = node_hint
        self._hint_valid = True

        if obs is not None:
            obs.on_cycle(cycle, visited_routers)

        self._check_watchdog(cycle)
        self.cycle = cycle + 1

    # ----------------------------------------------------------- observation
    def _make_obs_reader(self):
        from repro.obs.readers import SoAStateReader

        return SoAStateReader(self._st)

    # ------------------------------------------------------------- injection
    def _activate(self, rid: int) -> None:
        st = self._st
        if not st.active_flag[rid]:
            st.active_flag[rid] = True
            st.active.append(rid)
            st.unsorted = True

    def _try_inject(self, node, cycle: int) -> None:
        """``ComputeNode.try_inject`` against the flat state.

        The routing hooks receive the live :class:`RouterView` — UGAL/PB's
        ``on_inject`` reads ``router.output_occupancy``, which must observe
        SoA state, not the stale object router.
        """
        queue = node.source_queue
        packet = queue[0]
        st = self._st
        rid = st.node_rid[node.node_id]
        port = node.port
        g = rid * st.P + port
        num_vcs = st.in_nvcs[g]
        base_q = g * st.V
        pointer = node._vc_pointer
        size = packet.size_phits
        in_free = st.in_free
        for offset in range(num_vcs):
            vc = (pointer + offset) % num_vcs
            q = base_q + vc
            if in_free[q] < size:
                continue
            queue.popleft()
            packet.injection_cycle = cycle
            routing = self._routing
            view = st.views[rid]
            routing.on_inject(view, packet, cycle)
            dq = st.in_q[q]
            dq.append(packet)
            in_free[q] = in_free[q] - size
            if len(dq) == 1:
                k = port * st.V + vc
                insort(st.occ[rid], k)
                st.new_heads[rid].append(k)
                st.alloc_clean[rid] = False
            self._activate(rid)
            if self._notify_arrival:
                routing.on_packet_arrival(view, port, vc, packet, cycle)
            node._vc_pointer = (vc + 1) % num_vcs
            node.next_injection_cycle = cycle + size
            node.injected_packets += 1
            return

    # ----------------------------------------------------------- begin_cycle
    def _begin(self, rid: int, cycle: int) -> None:
        """``Router.begin_cycle``: apply due credit returns and link arrivals."""
        st = self._st
        P = st.P
        V = st.V
        base = rid * P
        nxt = _NO_EVENT

        cports = st.cred_ports[rid]
        if cports:
            credits = st.credits
            max_credits = st.max_credits
            credit_occ = st.credit_occ
            pending_credits = st.pending_credits
            remaining = []
            for port in cports:
                g = base + port
                pending = pending_credits[g]
                if pending[0][0] <= cycle:
                    # Returned credits can unblock waiting heads (and feed
                    # the occupancy triggers): re-evaluate allocation.
                    st.alloc_clean[rid] = False
                    base_q = g * V
                    while pending and pending[0][0] <= cycle:
                        _, vc, phits = pending.popleft()
                        q = base_q + vc
                        credits[q] += phits
                        credit_occ[g] -= phits
                        if credits[q] > max_credits[q]:
                            raise RuntimeError(
                                f"credit overflow on router {rid} port {port} vc {vc}"
                            )
                if pending:
                    remaining.append(port)
                    due = pending[0][0]
                    if due < nxt:
                        nxt = due
            st.cred_ports[rid] = remaining

        aports = st.arr_ports[rid]
        if aports:
            routing = self._routing
            notify = self._notify_arrival
            view = st.views[rid]
            occ_r = st.occ[rid]
            new_heads = st.new_heads[rid]
            in_q = st.in_q
            in_free = st.in_free
            arrivals_all = st.arrivals
            remaining = []
            for port in aports:
                g = base + port
                arrivals = arrivals_all[g]
                if arrivals[0][0] <= cycle:
                    base_q = g * V
                    while arrivals and arrivals[0][0] <= cycle:
                        _, vc, packet = arrivals.popleft()
                        q = base_q + vc
                        dq = in_q[q]
                        if not dq:
                            k = port * V + vc
                            insort(occ_r, k)
                            new_heads.append(k)
                            st.alloc_clean[rid] = False
                        size = packet.size_phits
                        free = in_free[q]
                        if free < size:
                            raise OverflowError(
                                f"VC buffer overflow: {size} phits requested, "
                                f"{free} free"
                            )
                        dq.append(packet)
                        in_free[q] = free - size
                        if notify:
                            routing.on_packet_arrival(view, port, vc, packet, cycle)
                if arrivals:
                    remaining.append(port)
                    due = arrivals[0][0]
                    if due < nxt:
                        nxt = due
            st.arr_ports[rid] = remaining

        st.next_begin[rid] = nxt

    # ---------------------------------------------------------------- commit
    def _commit(self, rid: int, input_port: int, input_vc: int, decision, cycle: int) -> None:
        """``Router._commit_grant``: move the head into the output pipeline."""
        st = self._st
        P = st.P
        V = st.V
        g = rid * P + input_port
        q = g * V + input_vc
        dq = st.in_q[q]
        packet = dq.popleft()
        size = packet.size_phits
        st.in_free[q] += size
        st.head_seen[q] = False
        k = input_port * V + input_vc
        if not dq:
            st.occ[rid].remove(k)
        else:
            st.new_heads[rid].append(k)

        up = st.up_g[g]
        if up >= 0:
            up_rid = st.up_rid[g]
            pending = st.pending_credits[up]
            if not pending:
                insort(st.cred_ports[up_rid], up - up_rid * P)
            arrival = cycle + st.up_lat[g]
            pending.append((arrival, input_vc, size))
            if arrival < st.next_begin[up_rid]:
                st.next_begin[up_rid] = arrival
            self._activate(up_rid)

        routing = self._routing
        view = st.views[rid]
        if self._notify_leave:
            routing.on_packet_leave_input(view, input_port, input_vc, packet, cycle)
        routing.on_grant(view, input_port, input_vc, packet, decision, cycle)

        out_port = decision.output_port
        og = rid * P + out_port
        if not st.kind_is_injection[out_port]:
            packet.record_hop(is_global=st.kind_is_global[out_port])
        packet.current_vc = decision.vc
        if not st.pipeline[og] and not st.out_q[og]:
            insort(st.busy_ports[rid], out_port)
        free = st.out_free[og]
        if free < size:
            raise OverflowError(
                f"output buffer over-commit: {size} requested, {free} free"
            )
        st.out_committed[og] += size
        st.out_free[og] = free - size
        cq = og * V + decision.vc
        if st.credits[cq] < size:
            raise RuntimeError(
                f"credit underflow on router {rid} port {out_port} vc {decision.vc}"
            )
        st.credits[cq] -= size
        st.credit_occ[og] += size
        ready = cycle + self._router_latency
        st.pipeline[og].append((ready, packet))
        if ready < st.next_transmit[rid]:
            st.next_transmit[rid] = ready

    # -------------------------------------------------------------- transmit
    def _transmit(self, rid: int, cycle: int) -> None:
        """``Router.transmit``: pipeline exits and link serialization."""
        st = self._st
        base = rid * st.P
        busy = st.busy_ports[rid]
        if not busy:
            st.next_transmit[rid] = _NO_EVENT
            return
        nxt = _NO_EVENT
        remaining = []
        pipelines = st.pipeline
        out_qs = st.out_q
        link_busy = st.link_busy
        for port in busy:
            g = base + port
            pipeline = pipelines[g]
            buf = out_qs[g]
            while pipeline and pipeline[0][0] <= cycle:
                buf.append(pipeline.popleft()[1])
            if buf and link_busy[g] <= cycle:
                packet = buf.popleft()
                size = packet.size_phits
                st.out_committed[g] -= size
                st.out_free[g] += size
                # Freed output space can admit waiting heads (and lowers
                # the occupancy triggers): re-evaluate allocation.
                st.alloc_clean[rid] = False
                size *= st.ser_fac[g]
                link_busy[g] = cycle + size
                down_rid = st.down_rid[g]
                if down_rid < 0:
                    packet.delivered_cycle = cycle + size
                    self._dlv.append(packet)
                else:
                    down_port = st.down_port[g]
                    dg = down_rid * st.P + down_port
                    arrivals = st.arrivals[dg]
                    if not arrivals:
                        insort(st.arr_ports[down_rid], down_port)
                    complete = cycle + st.link_lat[g] + size
                    arrivals.append((complete, packet.current_vc, packet))
                    if complete < st.next_begin[down_rid]:
                        st.next_begin[down_rid] = complete
                    self._activate(down_rid)
            keep = False
            if pipeline:
                keep = True
                due = pipeline[0][0]
                if due < nxt:
                    nxt = due
            if buf:
                keep = True
                due = link_busy[g]
                if due < nxt:
                    nxt = due
            if keep:
                remaining.append(port)
        st.busy_ports[rid] = remaining
        st.next_transmit[rid] = nxt

    # ------------------------------------------------------------- allocator
    def _alloc_round(self, rid: int, base: int, requests):
        """``SeparableAllocator.allocate`` over the flat pointer arrays.

        Requests are indexed positionally — slots 0/1/2 are input port,
        input VC and output port in both the captured-tuple shape and
        ``AllocationRequest`` (a NamedTuple with the same field order).
        """
        st = self._st
        in_ptr = st.in_ptr
        out_ptr = st.out_ptr
        P = st.P
        nvc = st.alloc_nvc[rid]
        if len(requests) == 1:
            req = requests[0]
            in_ptr[base + req[0]] = (req[1] + 1) % nvc
            out_ptr[base + req[2]] = (req[0] + 1) % P
            return requests
        if len({req[0] for req in requests}) == len(requests) and len(
            {req[2] for req in requests}
        ) == len(requests):
            for req in requests:
                in_ptr[base + req[0]] = (req[1] + 1) % nvc
                out_ptr[base + req[2]] = (req[0] + 1) % P
            return requests
        by_input = {}
        for req in requests:
            vc_requests = by_input.get(req[0])
            if vc_requests is None:
                by_input[req[0]] = vc_requests = {}
            vc_requests[req[1]] = req
        proposals = {}
        for in_port, vc_requests in by_input.items():
            winner_vc = _arbitrate(in_ptr, base + in_port, nvc, vc_requests)
            if winner_vc < 0:
                continue
            req = vc_requests[winner_vc]
            proposals.setdefault(req[2], []).append(req)
        grants = []
        for out_port, port_proposals in proposals.items():
            by_in = {req[0]: req for req in port_proposals}
            winner_in = _arbitrate(out_ptr, base + out_port, P, by_in)
            if winner_in < 0:
                continue
            grants.append(by_in[winner_in])
        return grants

    # --------------------------------------------------------- MODE_GENERIC
    def _allocate_generic(self, rid: int, cycle: int) -> None:
        """``Router.allocate`` verbatim, with ``select_output`` on the view."""
        st = self._st
        V = st.V
        base = rid * st.P
        routing = self._routing
        view = st.views[rid]
        in_q = st.in_q
        head_seen = st.head_seen

        new_heads = st.new_heads[rid]
        if new_heads:
            # The object model appends/report-gates new heads only for
            # mechanisms with an on_packet_head hook; the SoA state records
            # them unconditionally (the capture modes need them), so the
            # hook calls — and only those — stay gated here.
            if self._notify_head:
                if len(new_heads) > 1:
                    new_heads.sort()
                for k in new_heads:
                    q = base * V + k
                    if head_seen[q]:
                        continue
                    dq = in_q[q]
                    routing.on_packet_head(
                        view, k // V, k % V, dq[0] if dq else None, cycle
                    )
                    head_seen[q] = True
            st.new_heads[rid] = []

        occ_r = st.occ[rid]
        out_free = st.out_free
        credits = st.credits
        faults = self.faults
        if len(occ_r) == 1:
            k = occ_r[0]
            port, vc = divmod(k, V)
            q = base * V + k
            head = in_q[q][0]
            decision = routing.select_output(view, port, vc, head, cycle)
            if faults is not None:
                decision = self._resolve_faults(rid, port, vc, head, decision, cycle)
            if decision is None:
                return
            og = base + decision.output_port
            size = head.size_phits
            if out_free[og] < size or credits[og * V + decision.vc] < size:
                return
            st.in_ptr[base + port] = (vc + 1) % st.alloc_nvc[rid]
            st.out_ptr[og] = (port + 1) % st.P
            self._commit(rid, port, vc, decision, cycle)
            return

        occupied = occ_r[:]
        decision_memo = {} if self._pure_decisions else None
        granted = set()
        for round_index in range(self._speedup):
            requests = []
            for key in occupied:
                if key in granted:
                    continue
                port, vc = divmod(key, V)
                q = base * V + key
                dq = in_q[q]
                if not dq:
                    continue
                head = dq[0]
                if decision_memo is None or round_index == 0:
                    decision = routing.select_output(view, port, vc, head, cycle)
                    if decision_memo is not None:
                        decision_memo[key] = decision
                else:
                    decision = decision_memo[key]
                if faults is not None:
                    decision = self._resolve_faults(rid, port, vc, head, decision, cycle)
                if decision is None:
                    continue
                og = base + decision.output_port
                size = head.size_phits
                if out_free[og] < size:
                    continue
                if credits[og * V + decision.vc] < size:
                    continue
                requests.append(AllocationRequest(port, vc, decision.output_port, size, decision))
            if not requests:
                break
            for grant in self._alloc_round(rid, base, requests):
                self._commit(rid, grant[0], grant[1], grant[4], cycle)
                granted.add(grant[0] * V + grant[1])

    def _resolve_faults(self, rid, port, vc, head, decision, cycle):
        """``Router._resolve_faults`` over the flat state."""
        if head.fault_mode:
            pass
        elif decision is None or decision.output_port not in self.faults.failed_ports[rid]:
            return decision
        resolved = self._routing.fault_decision(self._st.views[rid], head, cycle, port, vc)
        if resolved is None:
            self._drop_head(rid, port, vc, cycle)
        return resolved

    def _drop_head(self, rid: int, port: int, vc: int, cycle: int) -> None:
        """``Router._drop_head`` over the flat state."""
        st = self._st
        g = rid * st.P + port
        q = g * st.V + vc
        dq = st.in_q[q]
        packet = dq.popleft()
        size = packet.size_phits
        st.in_free[q] += size
        st.head_seen[q] = False
        k = port * st.V + vc
        if not dq:
            st.occ[rid].remove(k)
        else:
            st.new_heads[rid].append(k)
        up = st.up_g[g]
        if up >= 0:
            up_rid = st.up_rid[g]
            pending = st.pending_credits[up]
            if not pending:
                insort(st.cred_ports[up_rid], up - up_rid * st.P)
            arrival = cycle + st.up_lat[g]
            pending.append((arrival, vc, size))
            if arrival < st.next_begin[up_rid]:
                st.next_begin[up_rid] = arrival
            self._activate(up_rid)
        if self._notify_leave:
            self._routing.on_packet_leave_input(st.views[rid], port, vc, packet, cycle)
        packet.dropped_cycle = cycle
        self.faults.dropped_packets += 1
        self._drp.append(packet)

    # ------------------------------------------------------------ MODE_PURE
    def _allocate_pure(self, rid: int, cycle: int) -> None:
        """Pure mechanisms: one ``select_output`` per head lifetime.

        ``decision_is_pure`` plus the head-constancy of every input
        (``packet`` fields, topology) make the decision a constant of the
        head, so it is captured when the head is first reported and the
        rounds reduce to admission checks + the separable allocator.
        """
        st = self._st
        V = st.V
        base_g = rid * st.P
        base_q = base_g * V
        in_q = st.in_q
        dreq = self._dreq

        new_heads = st.new_heads[rid]
        if new_heads:
            head_seen = st.head_seen
            if len(new_heads) > 1:
                new_heads.sort()
            routing = self._routing
            view = st.views[rid]
            for k in new_heads:
                q = base_q + k
                if head_seen[q]:
                    continue
                dq = in_q[q]
                if not dq:
                    continue
                head = dq[0]
                port, vc = divmod(k, V)
                decision = routing.select_output(view, port, vc, head, cycle)
                if decision is None:
                    dreq[q] = None
                else:
                    outp = decision.output_port
                    og = base_g + outp
                    dreq[q] = (
                        port, vc, outp, head.size_phits, decision,
                        og, og * V + decision.vc,
                    )
                head_seen[q] = True
            st.new_heads[rid] = []

        occ_r = st.occ[rid]
        out_free = st.out_free
        credits = st.credits
        clean = st.alloc_clean
        if len(occ_r) == 1:
            req = dreq[base_q + occ_r[0]]
            if req is not None:
                size = req[3]
                if out_free[req[5]] >= size and credits[req[6]] >= size:
                    st.in_ptr[base_g + req[0]] = (req[1] + 1) % st.alloc_nvc[rid]
                    st.out_ptr[req[5]] = (req[0] + 1) % st.P
                    self._commit(rid, req[0], req[1], req[4], cycle)
                    return
            clean[rid] = True
            return

        entries = [(k, base_q + k) for k in occ_r]
        granted = None
        got_grant = False
        commit = self._commit
        for _round in range(self._speedup):
            requests = []
            for k, q in entries:
                if granted is not None and k in granted:
                    continue
                if not in_q[q]:
                    continue
                req = dreq[q]
                if req is None:
                    continue
                size = req[3]
                if out_free[req[5]] < size or credits[req[6]] < size:
                    continue
                requests.append(req)
            if not requests:
                break
            for req in self._alloc_round(rid, base_g, requests):
                commit(rid, req[0], req[1], req[4], cycle)
                if granted is None:
                    granted = set()
                granted.add(req[0] * V + req[1])
                got_grant = True
        if not got_grant:
            # No grant and (pure mechanisms) no draw: the outcome cannot
            # change until an invalidating event fires.
            clean[rid] = True

    # ------------------------------------------------------------ MODE_FAST
    def _allocate_fast(self, rid: int, cycle: int) -> None:
        """Adaptive in-transit mechanisms: captured taxonomy + live trigger.

        The draw-free fast cases are inlined in the round loop: a cached
        request for ``CAT_FIXED`` heads, and the mechanism's *closed-gate*
        check (a counter or occupancy comparison against the captured
        minimal port) for the global/local-misroute categories, which falls
        back to the cached minimal request exactly like the transcribed
        trigger would.  Only open gates and forced-global heads take the
        full :meth:`_fast_request` path (which may draw).
        """
        st = self._st
        V = st.V
        base_g = rid * st.P
        base_q = base_g * V
        in_q = st.in_q

        new_heads = st.new_heads[rid]
        if new_heads:
            head_seen = st.head_seen
            if len(new_heads) > 1:
                new_heads.sort()
            routing = self._routing
            view = st.views[rid]
            notify_head = self._notify_head
            for k in new_heads:
                q = base_q + k
                if head_seen[q]:
                    continue
                dq = in_q[q]
                if not dq:
                    continue
                head = dq[0]
                if notify_head:
                    routing.on_packet_head(view, k // V, k % V, head, cycle)
                head_seen[q] = True
                self._capture_fast(rid, base_g, q, k, head)
            st.new_heads[rid] = []

        occ_r = st.occ[rid]
        out_free = st.out_free
        credits = st.credits
        clean = st.alloc_clean
        dcat = self._dcat
        dreq = self._dreq
        mech = self._mech
        draws0 = self._draws
        is_cnt = mech == MECH_BASE or mech == MECH_ECTN
        if is_cnt:
            counts = self._counters[rid].counts
            cth = self._cth
            dinj = self._dinj
            dminport = self._dminport
        elif mech == MECH_OLM:
            out_committed = st.out_committed
            credit_occ = st.credit_occ
            olm_min = self._olm_min_occ
            dminport = self._dminport

        if len(occ_r) == 1:
            k = occ_r[0]
            q = base_q + k
            cat = dcat[q]
            if cat == CAT_FIXED:
                req = dreq[q]
            else:
                req = None
                if cat != CAT_FORCED:
                    if is_cnt:
                        if not dinj[q] and counts[dminport[q]] <= cth:
                            req = dreq[q]
                    elif mech == MECH_OLM:
                        gm = base_g + dminport[q]
                        if out_committed[gm] + credit_occ[gm] < olm_min:
                            req = dreq[q]
                if req is None:
                    req = self._fast_request(rid, base_g, q, k)
            size = req[3]
            if out_free[req[5]] < size or credits[req[6]] < size:
                if self._draws == draws0:
                    clean[rid] = True
                return
            st.in_ptr[base_g + req[0]] = (req[1] + 1) % st.alloc_nvc[rid]
            st.out_ptr[req[5]] = (req[0] + 1) % st.P
            self._commit(rid, req[0], req[1], req[4], cycle)
            return

        entries = [(k, base_q + k, in_q[base_q + k]) for k in occ_r]
        granted = None
        got_grant = False
        commit = self._commit
        for _round in range(self._speedup):
            requests = []
            for k, q, dq in entries:
                if not dq:
                    continue
                if granted is not None and k in granted:
                    continue
                cat = dcat[q]
                if cat == CAT_FIXED:
                    req = dreq[q]
                else:
                    req = None
                    if cat != CAT_FORCED:
                        if is_cnt:
                            if not dinj[q] and counts[dminport[q]] <= cth:
                                req = dreq[q]
                        elif mech == MECH_OLM:
                            gm = base_g + dminport[q]
                            if out_committed[gm] + credit_occ[gm] < olm_min:
                                req = dreq[q]
                    if req is None:
                        req = self._fast_request(rid, base_g, q, k)
                size = req[3]
                if out_free[req[5]] < size or credits[req[6]] < size:
                    continue
                requests.append(req)
            if not requests:
                break
            for req in self._alloc_round(rid, base_g, requests):
                commit(rid, req[0], req[1], req[4], cycle)
                if granted is None:
                    granted = set()
                granted.add(req[0] * V + req[1])
                got_grant = True
        if not got_grant and self._draws == draws0:
            # Draw-free and grant-free: every input of this evaluation is
            # router-local and invalidation-tracked, so skip until poked.
            clean[rid] = True

    def _capture_fast(self, rid: int, base_g: int, q: int, k: int, head) -> None:
        """Classify a new head and cache everything constant while it waits.

        Mirrors the gate order of ``AdaptiveInTransitRouting.select_output``;
        only quantities that cannot change while the packet occupies the
        buffer head are read here (packet fields, topology, the memoized
        candidate sets).  Live state — occupancies, contention counters,
        ECtN/PB broadcasts — is read per round by the trigger transcription.
        """
        routing = self._routing
        st = self._st
        V = st.V
        topo = st.topology
        dst = head.dst
        npr = routing._nodes_per_router
        dst_router = dst // npr
        dcat = self._dcat
        dreq = self._dreq
        size = head.size_phits
        port, vc = divmod(k, V)
        if rid == dst_router:
            decision = routing.plain_decision(dst % npr, 0)
            dcat[q] = CAT_FIXED
            outp = decision.output_port
            og = base_g + outp
            dreq[q] = (port, vc, outp, size, decision, og, og * V + decision.vc)
            return
        if head.phase is _TO_INTERMEDIATE and head.intermediate_group is not None:
            decision = routing._towards_group(st.views[rid], head, head.intermediate_group)
            dcat[q] = CAT_FIXED
            outp = decision.output_port
            og = base_g + outp
            dreq[q] = (port, vc, outp, size, decision, og, og * V + decision.vc)
            return

        rpg = routing._routers_per_group
        current_group = rid // rpg
        dst_group = dst_router // rpg
        minimal_port = head.contention_port
        if minimal_port is None:
            minimal_port = topo.minimal_output_port(rid, dst)
        minimal_kind = st.port_kinds[minimal_port]

        # Minimal fallback request (select_output's tail), shared by every
        # category; the forced-global fallback is value-identical.
        if minimal_kind is _GLOBAL:
            g_hops = head.global_hops
            last = routing._global_vcs - 1
            min_vc = g_hops if g_hops < last else last
        elif minimal_kind is _LOCAL:
            g_hops = head.global_hops
            local = 1 if head.local_hops_in_group else 0
            min_vc = local if g_hops == 0 else 2 * g_hops - 1 + local
            last = routing._local_vcs - 1
            if min_vc > last:
                min_vc = last
        else:
            min_vc = 0
        og = base_g + minimal_port
        dreq[q] = (
            port, vc, minimal_port, size,
            routing.plain_decision(minimal_port, min_vc),
            og, og * V + min_vc,
        )
        self._dminport[q] = minimal_port

        if head.must_misroute_global and dst_group != current_group and head.global_hops == 0:
            dcat[q] = CAT_FORCED
            candidates = routing.global_candidates(
                rid, topo.node_region(dst), minimal_port, False
            )
            self._dcand[q] = candidates
            self._dgvc[q] = routing.next_vc(head, _GLOBAL)
            if self._mech == MECH_ECTN:
                # _forced_global_decision passes port=0 to the trigger, and
                # port 0 is an injection port on every topology with p >= 1.
                self._capture_ectn(rid, q, 0, head, candidates)
            return

        if dst_group != current_group and head.global_hops == 0 and not head.globally_misrouted:
            dcat[q] = CAT_GLOBAL
            candidates = routing.global_candidates(
                rid, dst_group, minimal_port, head.hops == 0
            )
            self._dcand[q] = candidates
            self._dgvc[q] = routing.next_vc(head, _GLOBAL)
            self._dlvc[q] = routing.next_vc(head, _LOCAL)
            if self._mech == MECH_ECTN:
                self._capture_ectn(rid, q, port, head, candidates)
            return

        if (
            minimal_kind is _LOCAL
            and head.local_hops_in_group == 0
            and head.global_hops <= 1
            and (current_group == dst_group or head.global_hops == 1)
        ):
            dcat[q] = CAT_LOCAL
            self._dcand[q] = routing.local_candidates(minimal_port)
            self._dlvc[q] = routing.next_vc(head, _LOCAL)
            return

        dcat[q] = CAT_FIXED

    def _capture_ectn(self, rid: int, q: int, check_port: int, head, candidates) -> None:
        """ECtN's injection-side trigger constants (see ``choose_global_misroute``)."""
        st = self._st
        routing = self._routing
        injection = st.kind_is_injection[check_port]
        self._dinj[q] = injection
        if not injection:
            return
        rpg = routing._routers_per_group
        group = rid // rpg
        dst_group = head.dst // routing._nodes_per_group
        self._dgrp[q] = group
        topo = st.topology
        offset_key = group * topo.num_groups + dst_group
        cache = routing._dest_offset_cache
        min_offset = cache.get(offset_key)
        if min_offset is None:
            min_offset = routing.link_offset_for_destination(group, dst_group)
            cache[offset_key] = min_offset
        self._dminoff[q] = min_offset
        self._dposbase[q] = (rid % rpg) * routing._h - routing._first_global_port
        # Order-preserving pre-filter of the static kind check.
        self._dcandg[q] = [c for c in candidates if c.kind is _GLOBAL]

    def _fast_request(self, rid: int, base: int, q: int, k: int):
        """One allocation round's request for a captured head (MODE_FAST).

        Only reached for forced-global heads and open trigger gates — the
        cached-request and closed-gate cases are inlined in the caller.
        The fallback request doubles as the head's size/port/vc record.
        """
        cat = self._dcat[q]
        dreq = self._dreq
        fallback = dreq[q]
        if cat == CAT_FIXED:
            return fallback
        minimal_port = self._dminport[q]
        candidates = self._dcand[q]
        V = self._st.V
        if cat == CAT_LOCAL:
            chosen = self._choose(rid, base, q, minimal_port, candidates)
            if chosen is None:
                return fallback
            cp = chosen.port
            lvc = self._dlvc[q]
            decision = RoutingDecision(
                output_port=cp,
                vc=lvc,
                nonminimal_local=True,
            )
            og = base + cp
            return (fallback[0], fallback[1], cp, fallback[3], decision, og, og * V + lvc)
        chosen = self._choose_global(rid, base, q, minimal_port, candidates)
        if cat == CAT_FORCED:
            if chosen is None and candidates:
                routing = self._routing
                self._draws += 1
                chosen = candidates[int(routing.rng.integers(0, len(candidates)))]
            if chosen is None:
                return fallback
            cp = chosen.port
            gvc = self._dgvc[q]
            decision = RoutingDecision(
                output_port=cp,
                vc=gvc,
                nonminimal_global=True,
                set_intermediate_group=chosen.target_group,
            )
            og = base + cp
            return (fallback[0], fallback[1], cp, fallback[3], decision, og, og * V + gvc)
        # CAT_GLOBAL
        if chosen is None:
            return fallback
        cp = chosen.port
        if chosen.kind is _GLOBAL:
            gvc = self._dgvc[q]
            decision = RoutingDecision(
                output_port=cp,
                vc=gvc,
                nonminimal_global=True,
                set_intermediate_group=chosen.target_group,
            )
        else:
            gvc = self._dlvc[q]
            decision = RoutingDecision(
                output_port=cp,
                vc=gvc,
                set_must_misroute_global=True,
            )
        og = base + cp
        return (fallback[0], fallback[1], cp, fallback[3], decision, og, og * V + gvc)

    # ----------------------------------------------------- trigger transcriptions
    def _choose_global(self, rid: int, base: int, q: int, minimal_port: int, candidates):
        """``choose_global_misroute`` of the active mechanism, flat-state reads."""
        if self._mech == MECH_ECTN and self._dinj[q]:
            routing = self._routing
            combined = routing.combined[self._dgrp[q]]
            threshold = self._ectn_cth
            if combined[self._dminoff[q]] > threshold:
                pos_base = self._dposbase[q]
                preferred = [
                    c for c in self._dcandg[q] if combined[pos_base + c.port] < threshold
                ]
                if preferred:
                    self._draws += 1
                    return preferred[int(routing.rng.integers(0, len(preferred)))]
            # fall through to the Base counters (ECtN's in-transit fallback)
        return self._choose(rid, base, q, minimal_port, candidates)

    def _choose(self, rid: int, base: int, q: int, minimal_port: int, candidates):
        """The shared global/local trigger body of OLM / Base / Hybrid / ECtN."""
        mech = self._mech
        routing = self._routing
        if mech == MECH_OLM:
            st = self._st
            out_committed = st.out_committed
            credit_occ = st.credit_occ
            g = base + minimal_port
            occ_min = out_committed[g] + credit_occ[g]
            if occ_min < self._olm_min_occ:
                return None
            limit = self._olm_th * occ_min
            preferred = [
                c
                for c in candidates
                if out_committed[base + c.port] + credit_occ[base + c.port] < limit
            ]
            if not preferred:
                return None
            self._draws += 1
            return preferred[int(routing.rng.integers(0, len(preferred)))]
        counts = self._counters[rid].counts
        threshold = self._cth
        if mech == MECH_HYBRID:
            if counts[minimal_port] > threshold:
                contention = [c for c in candidates if counts[c.port] < threshold]
                if contention:
                    self._draws += 1
                    return contention[int(routing.rng.integers(0, len(contention)))]
            st = self._st
            out_committed = st.out_committed
            credit_occ = st.credit_occ
            g = base + minimal_port
            occ_min = out_committed[g] + credit_occ[g]
            if occ_min < self._pkt2:
                return None
            limit = self._hyb_cong * occ_min
            preferred = [
                c
                for c in candidates
                if out_committed[base + c.port] + credit_occ[base + c.port] < limit
            ]
            if not preferred:
                return None
            self._draws += 1
            return preferred[int(routing.rng.integers(0, len(preferred)))]
        # MECH_BASE and ECtN's in-transit fallback
        if counts[minimal_port] <= threshold:
            return None
        preferred = [c for c in candidates if counts[c.port] < threshold]
        if not preferred:
            return None
        self._draws += 1
        return preferred[int(routing.rng.integers(0, len(preferred)))]

    # -------------------------------------------------- post-cycle transcriptions
    def _build_pb_tables(self) -> None:
        """Gather index for PB's saturation scan: broadcast slot -> flat port."""
        st = self._st
        topo = st.topology
        routing = self._routing
        links = topo.global_links_per_group
        groups = topo.num_groups
        h = topo.config.h
        first_global = min(topo.global_ports)
        gather = [0] * (groups * links)
        for group in range(groups):
            for router in self.network.group_routers(group):
                rid = router.router_id
                pos = router.position
                for k in range(h):
                    gather[group * links + pos * h + k] = rid * st.P + first_global + k
        self._pb_gidx = gather
        self._pb_caps = np.array([st.cap_sum[g] for g in gather], dtype=np.int64)
        self._pb_occ = np.empty(len(gather), dtype=np.int64)
        self._pb_links = links
        self._pb_groups = groups
        self._pb_frac = routing.params.pb_saturation_fraction
        self._pb_delay = routing.notification_delay

    def _pb_post_cycle(self, cycle: int) -> None:
        """``PiggybackRouting.post_cycle`` with the scan as a batched kernel."""
        st = self._st
        routing = self._routing
        occ = self._pb_occ
        out_committed = st.out_committed
        credit_occ = st.credit_occ
        for i, g in enumerate(self._pb_gidx):
            occ[i] = out_committed[g] + credit_occ[g]
        flags_all = self._kernels.pb_saturation_flags(occ, self._pb_caps, self._pb_frac)
        links = self._pb_links
        pending = routing._pending
        due = cycle + self._pb_delay
        for group in range(self._pb_groups):
            pending.append(
                (due, group, flags_all[group * links : (group + 1) * links].tolist())
            )
        while pending and pending[0][0] <= cycle:
            _, group, flags = pending.popleft()
            routing._flags[group] = flags
            if any(flags):
                routing._saturated_groups.add(group)
            else:
                routing._saturated_groups.discard(group)

    def _pb_post_horizon(self, cycle: int) -> Optional[int]:
        """``PiggybackRouting.post_cycle_horizon`` over the SoA active set."""
        routing = self._routing
        if self._st.active or routing._pending or routing._saturated_groups:
            return cycle
        return None

    def _ectn_post_cycle(self, cycle: int) -> None:
        """``ECtNRouting.post_cycle`` with the column sums as a batched kernel."""
        routing = self._routing
        if cycle % self._ectn_period != 0:
            return
        partial = routing.partial
        combined = routing.combined
        combine = self._kernels.combine_rows
        for group, rids in enumerate(self._ectn_group_rids):
            combined[group] = combine([partial[rid] for rid in rids])
        # The broadcast feeds the injection-side trigger of every router.
        clean = self._st.alloc_clean
        for rid in range(len(clean)):
            clean[rid] = False

    def _ectn_post_horizon(self, cycle: int) -> Optional[int]:
        # ECtN's horizon is purely period arithmetic; it ignores the network.
        return self._routing.post_cycle_horizon(None, cycle)

    # ------------------------------------------------------------- diagnostics
    def schedule_arrival(
        self, rid: int, port: int, complete_cycle: int, vc: int, packet
    ) -> None:
        """Fabricate a link arrival over the flat state (test surface)."""
        st = self._st
        arrivals = st.arrivals[rid * st.P + port]
        if not arrivals:
            insort(st.arr_ports[rid], port)
        arrivals.append((complete_cycle, vc, packet))
        if complete_cycle < st.next_begin[rid]:
            st.next_begin[rid] = complete_cycle
        self._activate(rid)

    def total_buffered_packets(self) -> int:
        """Packets inside the fabric — counted over the flat arrays (the
        object network this engine was built from stays empty)."""
        return self._st.total_buffered_packets()

    def _check_watchdog(self, cycle: int) -> None:
        watchdog = self.stall_watchdog_cycles
        if watchdog is None or cycle - self._last_progress_cycle < watchdog:
            return
        buffered = self._st.total_buffered_packets()
        if buffered == 0:
            self._last_progress_cycle = cycle
            return
        raise SimulationStallError(
            f"no packet delivered for {watchdog} cycles (cycle {cycle}) while "
            f"{buffered} packets are buffered in the network - possible "
            "deadlock or wiring bug\n" + self._stall_snapshot(cycle)
        )

    def _stall_snapshot(self, cycle: int) -> str:
        st = self._st
        occupancy = []
        oldest = None
        oldest_router = -1
        per_router = st.P * st.V
        for rid in range(st.R):
            count = len(st.occ[rid])
            if count:
                occupancy.append((count, rid))
            base_q = rid * per_router
            for q in range(base_q, base_q + per_router):
                dq = st.in_q[q]
                if not dq:
                    continue
                for packet in dq:
                    if oldest is None or packet.creation_cycle < oldest.creation_cycle:
                        oldest = packet
                        oldest_router = rid
        occupancy.sort(reverse=True)
        top = ", ".join(
            f"router {rid}: {count} occupied VCs" for count, rid in occupancy[:5]
        )
        lines = ["stall diagnostics:"]
        lines.append(f"  busiest routers: {top or 'none'}")
        if oldest is not None:
            lines.append(
                f"  oldest buffered packet: pid={oldest.pid} "
                f"{oldest.src}->{oldest.dst} phase={oldest.phase.value} "
                f"hops={oldest.hops} fault_mode={oldest.fault_mode} "
                f"age={cycle - oldest.creation_cycle} cycles at router {oldest_router}"
            )
            if self.obs is not None:
                lines.extend(self.obs.stall_context(oldest.pid, oldest_router))
        return "\n".join(lines)


def _arbitrate(pointers: List[int], index: int, num_clients: int, requests) -> int:
    """``RoundRobinArbiter.arbitrate`` against a flat pointer slot."""
    pointer = pointers[index]
    winner = -1
    winner_distance = num_clients
    for client in requests:
        if client < 0 or client >= num_clients:
            continue
        distance = client - pointer
        if distance < 0:
            distance += num_clients
        if distance < winner_distance:
            winner_distance = distance
            winner = client
    if winner < 0:
        return -1
    pointers[index] = (winner + 1) % num_clients
    return winner
