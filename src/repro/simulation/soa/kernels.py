"""Batched numpy kernels of the SoA backend, with an optional numba layer.

These kernels implement the *network-wide broadcast* computations of the
per-cycle loop — the pieces that touch every router of the network at once
and therefore vectorize cleanly:

* :func:`pb_saturation_flags` — PB's per-global-link saturation
  classification (``occupancy >= fraction * capacity`` over all global links
  of the network);
* :func:`combine_rows` — ECtN's per-group combined-counter broadcast (the
  column sum of the group's partial arrays).

Both are exact integer/float64 arithmetic, identical to the scalar Python
expressions of the object model, so results stay bit-identical.

:func:`get_kernels` returns the kernel namespace for a backend: the numpy
implementations, or — for ``backend="soa-numba"`` — ``@njit``-compiled
versions of the same loops when numba is importable.  The import is guarded;
without numba the numpy kernels are returned and ``backend_name`` reports
the fallback, so ``"soa-numba"`` degrades gracefully instead of failing.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["NUMBA_AVAILABLE", "get_kernels", "NumpyKernels"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in this image
    numba = None
    NUMBA_AVAILABLE = False


def pb_saturation_flags(
    occupancy: np.ndarray, capacity: np.ndarray, fraction: float
) -> np.ndarray:
    """``occupancy >= fraction * capacity`` elementwise (PB's ECN predicate).

    ``fraction * capacity`` is evaluated in float64 exactly like the scalar
    expression in ``PiggybackRouting.post_cycle``, so the boolean result is
    bit-identical to the object model's per-port comparison.
    """
    return occupancy >= fraction * capacity


def combine_rows(rows: Sequence[Sequence[int]]) -> List[int]:
    """Column sums of the per-router partial arrays (ECtN broadcast)."""
    return np.sum(np.asarray(rows, dtype=np.int64), axis=0).tolist()


class NumpyKernels:
    """Kernel namespace: plain numpy implementations."""

    backend_name = "numpy"
    pb_saturation_flags = staticmethod(pb_saturation_flags)
    combine_rows = staticmethod(combine_rows)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _pb_saturation_flags_nb(occupancy, capacity, fraction):
        n = occupancy.shape[0]
        out = np.empty(n, dtype=np.bool_)
        for i in range(n):
            # Same float64 arithmetic as the numpy/scalar expression.
            out[i] = occupancy[i] >= fraction * capacity[i]
        return out

    @numba.njit(cache=True)
    def _combine_rows_nb(rows):
        n_rows, n_cols = rows.shape
        out = np.zeros(n_cols, dtype=np.int64)
        for r in range(n_rows):
            for c in range(n_cols):
                out[c] += rows[r, c]
        return out

    class NumbaKernels:
        """Kernel namespace: ``@njit``-compiled versions of the same loops."""

        backend_name = "numba"

        @staticmethod
        def pb_saturation_flags(occupancy, capacity, fraction):
            return _pb_saturation_flags_nb(occupancy, capacity, fraction)

        @staticmethod
        def combine_rows(rows):
            return _combine_rows_nb(np.asarray(rows, dtype=np.int64)).tolist()

else:
    NumbaKernels = None  # type: ignore[assignment]


def get_kernels(use_numba: bool):
    """Return the kernel namespace for the requested flavour.

    ``use_numba=True`` asks for the numba layer; when numba is not importable
    the numpy kernels are returned instead (the documented pure-numpy
    fallback of ``backend="soa-numba"``).
    """
    if use_numba and NUMBA_AVAILABLE:
        return NumbaKernels
    return NumpyKernels
