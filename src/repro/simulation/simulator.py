"""High-level simulation facade.

:class:`Simulator` wires together a topology, a routing mechanism, a traffic
pattern and the cycle engine, and exposes the two measurement protocols used
by the paper:

* :meth:`Simulator.run_steady_state` — warm-up followed by a measurement
  window, reporting average latency, accepted load and misrouting fractions
  (the points of Figs. 5, 6 and 10);
* :meth:`Simulator.run_transient` — warm-up under one traffic pattern, switch
  to another at ``t = 0``, and report per-cycle-bin latency/misrouting series
  (Figs. 7, 8 and 9).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config.parameters import SimulationParameters
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeseries import TimeSeriesRecorder
from repro.network.network import Network
from repro.obs import ObservationConfig, ObservationHub, build_manifest, phase_timer
from repro.routing import create_routing
from repro.simulation.backends import create_engine
from repro.simulation.results import SteadyStateResult, TransientResult
from repro.topology.base import Topology
from repro.topology.faults import FaultModel, FaultRuntime
from repro.topology.registry import create_topology
from repro.traffic import TrafficPattern, TransientTraffic, create_pattern
from repro.traffic.bernoulli import BernoulliTrafficGenerator

__all__ = ["Simulator"]


class Simulator:
    """One simulated system: topology + routing + traffic + engine."""

    def __init__(
        self,
        params: SimulationParameters,
        routing: str,
        pattern: "TrafficPattern | str | None" = None,
        offered_load: float = 0.0,
        seed: int = 1,
        stall_watchdog_cycles: Optional[int] = 20_000,
        pattern_factory: Optional[Callable[[Topology], TrafficPattern]] = None,
        time_warp: bool = True,
        fault_model: Optional[FaultModel] = None,
        observation: "ObservationConfig | ObservationHub | None" = None,
    ):
        """Build one simulated system.

        ``pattern`` may be a pattern name (``"UN"``, ``"ADV+1"`` ...) or a
        ready-made :class:`~repro.traffic.base.TrafficPattern`.  When the
        pattern needs the simulator's topology to be constructed (e.g. the
        mixed-traffic experiment), pass ``pattern_factory`` — a callable
        ``topology -> TrafficPattern`` — instead of ``pattern``.

        The seed spawns three *named* RNG streams: the routing stream
        (misrouting candidate picks, Valiant intermediates), the traffic
        arrival stream (block pre-sampled Bernoulli draws) and the
        destination/payload stream (one draw per generated packet).
        Separating them keeps every stream's draw order well-defined no
        matter how the engine batches or warps over cycles.

        ``time_warp`` lets the engine jump over provably idle cycles; results
        are bit-identical either way (disable only for validation).

        ``fault_model`` injects link faults (see
        :mod:`repro.topology.faults`).  Its RNG is a *fourth* named stream,
        spawned only when a fault model is present — the first three children
        of a ``SeedSequence`` are independent of how many siblings follow, so
        healthy runs stay bit-identical with the fault subsystem in the tree.

        ``observation`` attaches the :mod:`repro.obs` probe subsystem — an
        :class:`~repro.obs.ObservationConfig` (a hub is built for it) or a
        ready-made :class:`~repro.obs.ObservationHub`.  When omitted, the
        ``REPRO_OBS`` environment variable can enable probes without
        touching call sites (mirroring ``REPRO_BACKEND``); probes never
        touch the RNG streams, so results are bit-identical with
        observation on or off.
        """
        if (pattern is None) == (pattern_factory is None):
            raise ValueError("exactly one of pattern / pattern_factory is required")
        self.params = params
        self.seed = seed
        seed_seq = np.random.SeedSequence(seed)
        routing_seq, arrival_seq, payload_seq = seed_seq.spawn(3)
        #: Routing stream (kept as ``rng`` for backward compatibility).
        self.rng = np.random.default_rng(routing_seq)
        self.arrival_rng = np.random.default_rng(arrival_seq)
        self.payload_rng = np.random.default_rng(payload_seq)
        self.topology = create_topology(params.topology)
        self.faults: Optional[FaultRuntime] = None
        if fault_model is not None and not fault_model.is_trivial:
            (fault_seq,) = seed_seq.spawn(1)
            fault_rng = np.random.default_rng(fault_seq)
            self.faults = FaultRuntime(self.topology, fault_model, fault_rng)
        self.routing = create_routing(routing, self.topology, params, self.rng)
        if self.faults is not None:
            self.routing.attach_faults(self.faults)
        self.network = Network(self.topology, params, self.routing, faults=self.faults)
        if pattern_factory is not None:
            pattern = pattern_factory(self.topology)
        elif isinstance(pattern, str):
            pattern = create_pattern(pattern, self.topology)
        self.pattern = pattern
        self.traffic = BernoulliTrafficGenerator(
            topology=self.topology,
            pattern=pattern,
            offered_load=offered_load,
            packet_size_phits=params.packet_size_phits,
            rng=self.payload_rng,
            arrival_rng=self.arrival_rng,
        )
        self.engine = create_engine(
            params.backend,
            self.network,
            self.traffic,
            metrics=None,
            stall_watchdog_cycles=stall_watchdog_cycles,
            time_warp=time_warp,
            faults=self.faults,
        )
        self.obs: Optional[ObservationHub] = None
        if observation is None:
            observation = ObservationConfig.from_env()
        if observation is not None:
            self.attach_observation(observation)

    # ------------------------------------------------------------ observation
    def attach_observation(
        self, observation: "ObservationConfig | ObservationHub"
    ) -> ObservationHub:
        """Wire a probe hub into the engine and stamp its run manifest."""
        hub = (
            observation
            if isinstance(observation, ObservationHub)
            else ObservationHub(observation)
        )
        self.obs = hub
        self.engine.attach_observation(hub)
        hub.set_manifest(build_manifest(self))
        return hub

    # ------------------------------------------------------------------ basic
    @property
    def cycle(self) -> int:
        return self.engine.cycle

    def run_cycles(self, cycles: int) -> None:
        """Advance the simulation without measuring (warm-up / drain)."""
        self.engine.run(cycles)

    # ----------------------------------------------------------- steady state
    def run_steady_state(
        self,
        warmup_cycles: int,
        measure_cycles: int,
        drain_cycles: Optional[int] = None,
    ) -> SteadyStateResult:
        """Warm up, measure for ``measure_cycles``, drain, and summarise."""
        if drain_cycles is None:
            drain_cycles = self._default_drain_cycles()
        obs = self.obs
        with phase_timer(obs, "warmup"):
            self.run_cycles(warmup_cycles)

        start = self.engine.cycle
        end = start + measure_cycles
        metrics = MetricsCollector(
            num_nodes=self.topology.num_nodes, measure_start=start, measure_end=end
        )
        metrics.finalize_window()
        self.engine.metrics = metrics
        with phase_timer(obs, "measure"):
            self.engine.run(measure_cycles)
        # Let packets generated near the end of the window reach their
        # destination so their latency is included.
        with phase_timer(obs, "drain"):
            self.engine.run(drain_cycles)
        self.engine.metrics = None
        if obs is not None:
            obs.finalize(self.engine)

        return SteadyStateResult(
            routing=self.routing.name,
            pattern=self.pattern.name,
            offered_load=self.traffic.offered_load,
            seed=self.seed,
            mean_latency=metrics.latency.mean,
            p99_latency=metrics.latency.percentile(99),
            accepted_load=metrics.throughput.accepted_load,
            global_misroute_fraction=metrics.misrouting.global_misroute_fraction,
            local_misroute_fraction=metrics.misrouting.local_misroute_fraction,
            mean_hops=metrics.misrouting.mean_hops,
            delivered_packets=metrics.misrouting.delivered,
            dropped_packets=metrics.dropped_packets,
            fault_rerouted_packets=metrics.fault_rerouted_delivered,
        )

    # -------------------------------------------------------------- transient
    def run_transient(
        self,
        warmup_cycles: int,
        observe_before: int,
        observe_after: int,
        bin_size: int = 10,
        drain_cycles: Optional[int] = None,
    ) -> TransientResult:
        """Run a transient experiment around the pattern's switch cycle.

        The simulator must have been built with a
        :class:`~repro.traffic.transient.TransientTraffic` pattern whose
        ``switch_cycle`` equals ``warmup_cycles``: the traffic changes right
        after the warm-up, observation covers ``observe_before`` cycles before
        and ``observe_after`` cycles after the change, and the reported cycle
        axis is relative to the change (as in Figs. 7–9).
        """
        if not isinstance(self.pattern, TransientTraffic):
            raise TypeError("run_transient requires a TransientTraffic pattern")
        switch = self.pattern.switch_cycle
        if switch != warmup_cycles:
            raise ValueError(
                f"pattern switch cycle ({switch}) must equal warmup_cycles ({warmup_cycles})"
            )
        if drain_cycles is None:
            drain_cycles = self._default_drain_cycles()

        series = TimeSeriesRecorder(
            bin_size=bin_size,
            start_cycle=switch - observe_before,
            end_cycle=switch + observe_after,
        )
        metrics = MetricsCollector(
            num_nodes=self.topology.num_nodes,
            measure_start=switch - observe_before,
            measure_end=switch + observe_after,
            timeseries=series,
        )
        metrics.finalize_window()
        self.engine.metrics = metrics
        with phase_timer(self.obs, "transient"):
            self.engine.run(switch + observe_after + drain_cycles)
        self.engine.metrics = None
        if self.obs is not None:
            self.obs.finalize(self.engine)

        points = series.points()
        return TransientResult(
            routing=self.routing.name,
            offered_load=self.traffic.offered_load,
            seed=self.seed,
            switch_cycle=switch,
            cycles=[p.bin_start - switch for p in points],
            mean_latency=[p.mean_latency for p in points],
            misrouted_fraction=[p.misrouted_fraction for p in points],
        )

    # ---------------------------------------------------------------- helpers
    def _default_drain_cycles(self) -> int:
        """A drain period long enough for in-flight packets to be delivered."""
        p = self.params
        rtt = 2 * p.global_link_latency + 4 * p.local_link_latency
        return max(4 * rtt, 20 * p.packet_size_phits)

    @classmethod
    def build_transient(
        cls,
        params: SimulationParameters,
        routing: str,
        before: str,
        after: str,
        offered_load: float,
        switch_cycle: int,
        seed: int = 1,
        stall_watchdog_cycles: Optional[int] = 20_000,
        time_warp: bool = True,
    ) -> "Simulator":
        """Convenience constructor for UN→ADV-style transient experiments."""
        topology = create_topology(params.topology)
        pattern = TransientTraffic(
            topology,
            before=create_pattern(before, topology),
            after=create_pattern(after, topology),
            switch_cycle=switch_cycle,
        )
        return cls(
            params,
            routing,
            pattern,
            offered_load,
            seed=seed,
            stall_watchdog_cycles=stall_watchdog_cycles,
            time_warp=time_warp,
        )
