"""Result containers for steady-state and transient experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["SteadyStateResult", "TransientResult"]


@dataclass(frozen=True, slots=True)
class SteadyStateResult:
    """Outcome of one steady-state run (one routing, pattern, load, seed)."""

    routing: str
    pattern: str
    offered_load: float
    seed: int
    mean_latency: float
    p99_latency: float
    accepted_load: float
    global_misroute_fraction: float
    local_misroute_fraction: float
    mean_hops: float
    delivered_packets: int
    #: Fault accounting (both stay 0 on a healthy run; appended with
    #: defaults so pre-fault callers and recorded goldens are unaffected).
    dropped_packets: int = 0
    fault_rerouted_packets: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "routing": self.routing,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "seed": float(self.seed),
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "accepted_load": self.accepted_load,
            "global_misroute_fraction": self.global_misroute_fraction,
            "local_misroute_fraction": self.local_misroute_fraction,
            "mean_hops": self.mean_hops,
            "delivered_packets": float(self.delivered_packets),
            "dropped_packets": float(self.dropped_packets),
            "fault_rerouted_packets": float(self.fault_rerouted_packets),
        }


@dataclass(frozen=True, slots=True)
class TransientResult:
    """Outcome of one transient run: per-bin series around the traffic change.

    Cycles are expressed relative to the traffic change (negative = before).
    """

    routing: str
    offered_load: float
    seed: int
    switch_cycle: int
    cycles: List[int] = field(default_factory=list)
    mean_latency: List[float] = field(default_factory=list)
    misrouted_fraction: List[float] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, float]]:
        return [
            {
                "routing": self.routing,
                "cycle": float(c),
                "mean_latency": lat,
                "misrouted_fraction": mis,
            }
            for c, lat, mis in zip(self.cycles, self.mean_latency, self.misrouted_fraction)
        ]
