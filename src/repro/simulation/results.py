"""Result containers for steady-state and transient experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

__all__ = ["GOLDENS_SCHEMA_REV", "SteadyStateResult", "TransientResult"]

#: Revision of the result-row schema.  Bumped whenever the meaning or the
#: set of fields in :class:`SteadyStateResult` / :class:`TransientResult`
#: changes.  Shared by the golden recorder (``repro.tools.record_goldens``
#: stamps it into ``goldens.json``) and the sweep-service cache key
#: (:mod:`repro.service.keys`): a schema bump invalidates every cached row,
#: exactly like it forces the goldens to be re-recorded.
GOLDENS_SCHEMA_REV = "golden-results-v2"


@dataclass(frozen=True, slots=True)
class SteadyStateResult:
    """Outcome of one steady-state run (one routing, pattern, load, seed)."""

    routing: str
    pattern: str
    offered_load: float
    seed: int
    mean_latency: float
    p99_latency: float
    accepted_load: float
    global_misroute_fraction: float
    local_misroute_fraction: float
    mean_hops: float
    delivered_packets: int
    #: Fault accounting (both stay 0 on a healthy run; appended with
    #: defaults so pre-fault callers and recorded goldens are unaffected).
    dropped_packets: int = 0
    fault_rerouted_packets: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "routing": self.routing,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "seed": float(self.seed),
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "accepted_load": self.accepted_load,
            "global_misroute_fraction": self.global_misroute_fraction,
            "local_misroute_fraction": self.local_misroute_fraction,
            "mean_hops": self.mean_hops,
            "delivered_packets": float(self.delivered_packets),
            "dropped_packets": float(self.dropped_packets),
            "fault_rerouted_packets": float(self.fault_rerouted_packets),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SteadyStateResult":
        """Inverse of :meth:`as_dict` (bit-exact round-trip).

        ``as_dict`` widens the integer counters to floats for the
        reporting layer; the counts are far below 2**53 so the float
        values are exact and the ``int()`` conversions here recover the
        original fields bit-for-bit — the property the result cache's
        fingerprint check relies on.
        """
        return cls(
            routing=str(payload["routing"]),
            pattern=str(payload["pattern"]),
            offered_load=float(payload["offered_load"]),
            seed=int(payload["seed"]),
            mean_latency=float(payload["mean_latency"]),
            p99_latency=float(payload["p99_latency"]),
            accepted_load=float(payload["accepted_load"]),
            global_misroute_fraction=float(payload["global_misroute_fraction"]),
            local_misroute_fraction=float(payload["local_misroute_fraction"]),
            mean_hops=float(payload["mean_hops"]),
            delivered_packets=int(payload["delivered_packets"]),
            dropped_packets=int(payload.get("dropped_packets", 0)),
            fault_rerouted_packets=int(payload.get("fault_rerouted_packets", 0)),
        )


@dataclass(frozen=True, slots=True)
class TransientResult:
    """Outcome of one transient run: per-bin series around the traffic change.

    Cycles are expressed relative to the traffic change (negative = before).
    """

    routing: str
    offered_load: float
    seed: int
    switch_cycle: int
    cycles: List[int] = field(default_factory=list)
    mean_latency: List[float] = field(default_factory=list)
    misrouted_fraction: List[float] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, float]]:
        return [
            {
                "routing": self.routing,
                "cycle": float(c),
                "mean_latency": lat,
                "misrouted_fraction": mis,
            }
            for c, lat, mis in zip(self.cycles, self.mean_latency, self.misrouted_fraction)
        ]

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-serializable view (losslessly invertible by ``from_dict``)."""
        return {
            "routing": self.routing,
            "offered_load": self.offered_load,
            "seed": self.seed,
            "switch_cycle": self.switch_cycle,
            "cycles": list(self.cycles),
            "mean_latency": list(self.mean_latency),
            "misrouted_fraction": list(self.misrouted_fraction),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TransientResult":
        """Inverse of :meth:`as_dict` (bit-exact round-trip)."""
        return cls(
            routing=str(payload["routing"]),
            offered_load=float(payload["offered_load"]),
            seed=int(payload["seed"]),
            switch_cycle=int(payload["switch_cycle"]),
            cycles=[int(c) for c in payload["cycles"]],
            mean_latency=[float(v) for v in payload["mean_latency"]],
            misrouted_fraction=[float(v) for v in payload["misrouted_fraction"]],
        )
