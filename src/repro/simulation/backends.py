"""Simulation backend registry.

The simulator supports several engine implementations over the same network
model (see ``SimulationParameters.backend``):

* ``"object"`` — the per-object router model (:class:`~repro.simulation.engine.Engine`);
* ``"soa"`` — the struct-of-arrays transcription of the same model
  (:class:`~repro.simulation.soa.SoAEngine`), bit-identical to ``"object"``
  and several times faster under contention;
* ``"soa-numba"`` — the SoA engine with its batched kernels compiled by
  numba when importable, falling back to the pure-numpy kernels otherwise
  (still bit-identical).

The SoA package is imported lazily so the default object backend keeps its
import footprint.
"""

from __future__ import annotations

from typing import Optional

from repro.config.parameters import VALID_BACKENDS
from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.simulation.engine import Engine
from repro.traffic.bernoulli import BernoulliTrafficGenerator

__all__ = ["create_engine"]


def create_engine(
    backend: str,
    network: Network,
    traffic: BernoulliTrafficGenerator,
    metrics: Optional[MetricsCollector] = None,
    stall_watchdog_cycles: Optional[int] = 20_000,
    time_warp: bool = True,
    faults=None,
) -> Engine:
    """Build the engine implementation selected by ``backend``."""
    if backend not in VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (valid: {sorted(VALID_BACKENDS)})")
    if backend == "object":
        return Engine(
            network,
            traffic,
            metrics=metrics,
            stall_watchdog_cycles=stall_watchdog_cycles,
            time_warp=time_warp,
            faults=faults,
        )
    from repro.simulation.soa import SoAEngine

    return SoAEngine(
        network,
        traffic,
        metrics=metrics,
        stall_watchdog_cycles=stall_watchdog_cycles,
        time_warp=time_warp,
        faults=faults,
        use_numba=(backend == "soa-numba"),
    )
