"""Synchronous cycle-driven simulation engine.

The engine advances the whole network one cycle at a time:

1. generate traffic (Bernoulli process) into the node source queues;
2. inject packets from the source queues into the router injection buffers
   (only nodes with a backlog are visited);
3. ``begin_cycle`` on every *active* router (credit returns, link arrivals);
4. ``allocate`` on every active router (routing + separable allocation);
5. ``transmit`` on every active router (link serialization, node deliveries);
6. the routing algorithm's ``post_cycle`` hook (ECN / ECtN broadcasts);
7. collect delivery events into the metrics and retire routers whose work
   counters dropped to zero.

Routers and nodes register themselves in the network's active sets when work
arrives (see :mod:`repro.network.router`); each phase iterates the active set
in router-id order, which reproduces the exact visit order — and therefore
bit-identical per-seed results — of a full sweep over all routers, while an
idle region of the network costs nothing per cycle.

A stall watchdog aborts the simulation with a clear error if packets are
buffered in the network but none is delivered for a long stretch of cycles —
this turns a (theoretically possible) routing deadlock or a wiring bug into a
diagnosable failure rather than an endless run.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Optional, Sequence

from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.router import Router
from repro.traffic.bernoulli import BernoulliTrafficGenerator

__all__ = ["Engine", "SimulationStallError"]

_router_id = attrgetter("router_id")
_node_id = attrgetter("node_id")


class SimulationStallError(RuntimeError):
    """Raised when the network stops making forward progress."""


class Engine:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    def __init__(
        self,
        network: Network,
        traffic: BernoulliTrafficGenerator,
        metrics: Optional[MetricsCollector] = None,
        stall_watchdog_cycles: Optional[int] = 20_000,
    ):
        self.network = network
        self.traffic = traffic
        self.metrics = metrics
        self.stall_watchdog_cycles = stall_watchdog_cycles
        self.cycle = 0
        self.delivered_packets = 0
        self._last_progress_cycle = 0

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        network = self.network
        metrics = self.metrics

        # 1. traffic generation (activates the source nodes)
        nodes = network.nodes
        for src, packet in self.traffic.generate(cycle):
            nodes[src].enqueue(packet)
            if metrics is not None:
                metrics.record_generated(packet)

        # 2. injection from the backlogged source queues, in node-id order
        active_nodes = network._active_nodes
        if active_nodes:
            active_nodes.sort(key=_node_id)
            backlogged = []
            for node in active_nodes:
                if cycle >= node.next_injection_cycle:
                    node.try_inject(cycle)
                if node.source_queue:
                    backlogged.append(node)
                else:
                    node.active = False
            network._active_nodes = backlogged

        # 3-5. router phases over the active set, in router-id order.  The
        # snapshot keeps the phases stable while credit returns and link
        # arrivals activate further routers for the *next* cycle (their
        # scheduled cycles are strictly in the future, so skipping them in the
        # current cycle's phases changes nothing).
        routers: Sequence[Router]
        active_routers = network._active_routers
        if active_routers:
            active_routers.sort(key=_router_id)
            routers = active_routers[:]
            for router in routers:
                if router._credit_ports or router._arrival_ports:
                    router.begin_cycle(cycle)
            for router in routers:
                if router._occupied_vcs:
                    router.allocate(cycle)
            for router in routers:
                if router._busy_out_ports:
                    router.transmit(cycle)
        else:
            routers = ()

        # 6. network-wide routing hook (ECN / ECtN broadcasts)
        network.routing.post_cycle(network, cycle)

        # 7. collect deliveries and retire idle routers
        delivered_now = 0
        for router in routers:
            if not router.delivered:
                continue
            for packet in router.drain_delivered():
                delivered_now += 1
                if metrics is not None:
                    metrics.record_delivery(packet, cycle)
        if delivered_now:
            self.delivered_packets += delivered_now
            self._last_progress_cycle = cycle

        current = network._active_routers
        if current:
            still_active = []
            for router in current:
                if router.has_work():
                    still_active.append(router)
                else:
                    router.active = False
            network._active_routers = still_active

        self._check_watchdog(cycle)
        self.cycle = cycle + 1

    # -- watchdog -----------------------------------------------------------------
    def _check_watchdog(self, cycle: int) -> None:
        if self.stall_watchdog_cycles is None:
            return
        if cycle - self._last_progress_cycle < self.stall_watchdog_cycles:
            return
        if self.network.total_buffered_packets() == 0:
            self._last_progress_cycle = cycle
            return
        raise SimulationStallError(
            f"no packet delivered for {self.stall_watchdog_cycles} cycles "
            f"(cycle {cycle}) while {self.network.total_buffered_packets()} packets "
            "are buffered in the network - possible deadlock or wiring bug"
        )
