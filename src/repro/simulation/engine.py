"""Synchronous cycle-driven simulation engine.

The engine advances the whole network one cycle at a time:

1. generate traffic (Bernoulli process) into the node source queues;
2. inject packets from the source queues into the router injection buffers;
3. ``begin_cycle`` on every router (credit returns, link arrivals);
4. ``allocate`` on every router (routing + separable allocation);
5. ``transmit`` on every router (link serialization, node deliveries);
6. the routing algorithm's ``post_cycle`` hook (ECN / ECtN broadcasts);
7. collect delivery events into the metrics.

A stall watchdog aborts the simulation with a clear error if packets are
buffered in the network but none is delivered for a long stretch of cycles —
this turns a (theoretically possible) routing deadlock or a wiring bug into a
diagnosable failure rather than an endless run.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.traffic.bernoulli import BernoulliTrafficGenerator

__all__ = ["Engine", "SimulationStallError"]


class SimulationStallError(RuntimeError):
    """Raised when the network stops making forward progress."""


class Engine:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    def __init__(
        self,
        network: Network,
        traffic: BernoulliTrafficGenerator,
        metrics: Optional[MetricsCollector] = None,
        stall_watchdog_cycles: Optional[int] = 20_000,
    ):
        self.network = network
        self.traffic = traffic
        self.metrics = metrics
        self.stall_watchdog_cycles = stall_watchdog_cycles
        self.cycle = 0
        self.delivered_packets = 0
        self._last_progress_cycle = 0

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        network = self.network
        metrics = self.metrics

        # 1. traffic generation
        for src, packet in self.traffic.generate(cycle):
            network.nodes[src].enqueue(packet)
            if metrics is not None:
                metrics.record_generated(packet)

        # 2. injection from the source queues
        for node in network.nodes:
            if node.source_queue:
                node.try_inject(cycle)

        # 3-5. router phases
        routers = network.routers
        for router in routers:
            router.begin_cycle(cycle)
        for router in routers:
            router.allocate(cycle)
        for router in routers:
            router.transmit(cycle)

        # 6. network-wide routing hook (ECN / ECtN broadcasts)
        network.routing.post_cycle(network, cycle)

        # 7. collect deliveries
        for router in routers:
            if not router.delivered and not router.global_hop_events:
                continue
            delivered, _events = router.drain_events()
            for packet in delivered:
                self.delivered_packets += 1
                if metrics is not None:
                    metrics.record_delivery(packet, cycle)
            if delivered:
                self._last_progress_cycle = cycle

        self._check_watchdog(cycle)
        self.cycle = cycle + 1

    # -- watchdog -----------------------------------------------------------------
    def _check_watchdog(self, cycle: int) -> None:
        if self.stall_watchdog_cycles is None:
            return
        if cycle - self._last_progress_cycle < self.stall_watchdog_cycles:
            return
        if self.network.total_buffered_packets() == 0:
            self._last_progress_cycle = cycle
            return
        raise SimulationStallError(
            f"no packet delivered for {self.stall_watchdog_cycles} cycles "
            f"(cycle {cycle}) while {self.network.total_buffered_packets()} packets "
            "are buffered in the network - possible deadlock or wiring bug"
        )
