"""Synchronous cycle-driven simulation engine with a time-warp fast path.

The engine advances the whole network one cycle at a time:

1. generate traffic (pre-sampled Bernoulli arrivals) into the node source
   queues;
2. inject packets from the source queues into the router injection buffers
   (only nodes with a backlog are visited);
3. run ``begin_cycle`` (credit returns, link arrivals), ``allocate``
   (routing + separable allocation) and ``transmit`` (link serialization,
   node deliveries) over the *active* routers;
4. the routing algorithm's ``post_cycle`` hook (PB / ECtN broadcasts),
   invoked only for mechanisms that declare ``needs_post_cycle``;
5. retire routers whose work counters dropped to zero.

The three router phases are fused into a single pass per router: every
cross-router interaction inside a cycle (link arrivals, credit returns) is
scheduled strictly in the future and all phase reads are router-local, so
``begin/allocate/transmit`` per router in router-id order is bit-identical
to three network-wide sweeps — at a third of the iteration cost.  Routers
and nodes register themselves in the network's active sets when work arrives
(see :mod:`repro.network.router`); the sets are kept in router-id order and
re-sorted lazily, only after new activations.

Time warp
---------
``run`` does not blindly call ``step`` once per cycle.  Every event in the
model is scheduled (pre-sampled traffic arrivals, node injection spacing,
link arrival/credit completions, pipeline exits, link-free times, routing
broadcast periods), so when no component has work *this* cycle the engine
computes the **work horizon** — the min over all scheduled event cycles —
and advances ``cycle`` directly to it.  The router/node parts of the horizon
are computed as a by-product of the retirement and injection passes of the
previous ``step`` (the "hints" below), so the busy-network fast path pays
almost nothing for the warp machinery.  A warped-over cycle is, by
construction, one in which ``step`` would have been a complete no-op, so
results are bit-identical with the warp on or off (asserted by
``tests/simulation/test_time_warp.py``); only wall-clock time changes.  The
number of cycles skipped this way is reported in
:attr:`Engine.cycles_skipped` and in the module-level :data:`ENGINE_STATS`.

A stall watchdog aborts the simulation with a clear error if packets are
buffered in the network but none is delivered for a long stretch of cycles —
this turns a (theoretically possible) routing deadlock or a wiring bug into a
diagnosable failure rather than an endless run.  Warp jumps never overshoot
the watchdog deadline, so a genuine stall is detected at exactly the cycle
the cycle-by-cycle engine would detect it, even when every remaining "event"
lies in the far future.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Optional, Sequence

from repro.metrics.collector import MetricsCollector
from repro.network.network import Network
from repro.network.router import _NO_EVENT, Router
from repro.traffic.bernoulli import BernoulliTrafficGenerator

__all__ = ["Engine", "SimulationStallError", "ENGINE_STATS"]

_router_id = attrgetter("router_id")
_node_id = attrgetter("node_id")


class SimulationStallError(RuntimeError):
    """Raised when the network stops making forward progress.

    The message carries a diagnostic snapshot — per-router occupied-VC
    counts and the oldest in-flight packet's identity, route state and age —
    so a stall (a routing deadlock, a wiring bug, or an unhandled fault
    scenario) is debuggable from the exception alone.
    """


class _EngineStats:
    """Process-wide cycle accounting (benchmark/perf-trajectory artifacts)."""

    __slots__ = ("cycles_executed", "cycles_skipped")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.cycles_executed = 0
        self.cycles_skipped = 0

    @property
    def cycles_total(self) -> int:
        return self.cycles_executed + self.cycles_skipped

    def snapshot(self) -> dict:
        return {
            "cycles_executed": self.cycles_executed,
            "cycles_skipped": self.cycles_skipped,
        }


#: Aggregated over every ``Engine.run`` call in this process (per process —
#: parallel sweep workers each keep their own).
ENGINE_STATS = _EngineStats()


class Engine:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    __slots__ = (
        "network",
        "traffic",
        "metrics",
        "obs",
        "faults",
        "stall_watchdog_cycles",
        "time_warp",
        "cycle",
        "delivered_packets",
        "dropped_packets",
        "cycles_skipped",
        "_last_progress_cycle",
        "_post_cycle",
        "_hint_valid",
        "_hint_router_event",
        "_hint_node_injection",
    )

    def __init__(
        self,
        network: Network,
        traffic: BernoulliTrafficGenerator,
        metrics: Optional[MetricsCollector] = None,
        stall_watchdog_cycles: Optional[int] = 20_000,
        time_warp: bool = True,
        faults=None,
    ):
        self.network = network
        self.traffic = traffic
        self.metrics = metrics
        #: Observation hub (:mod:`repro.obs`) or ``None``.  Every
        #: instrumentation site is gated on a single ``is None`` check of
        #: this slot — the same zero-overhead idiom as ``metrics``.
        self.obs = None
        #: Fault state driving scheduled fail/repair events (``None`` on a
        #: healthy run).  A scheduled fault is a *work event*: both horizon
        #: computations below refuse to warp past ``pending_event_cycle``.
        self.faults = faults
        self.stall_watchdog_cycles = stall_watchdog_cycles
        #: Whether ``run`` may jump over provably idle cycles.  Results are
        #: bit-identical either way; disable only for debugging/validation.
        self.time_warp = time_warp
        self.cycle = 0
        self.delivered_packets = 0
        #: Packets dropped because a fault left their destination unreachable.
        self.dropped_packets = 0
        #: Cycles ``run`` advanced without executing (the warped-over ones).
        self.cycles_skipped = 0
        self._last_progress_cycle = 0
        # The network-wide hook is a bound-method cache: ``None`` for the
        # mechanisms that declare no per-cycle work (MIN/VAL/OLM/Base/Hybrid).
        # A mechanism that overrides post_cycle without declaring the flag
        # would silently lose its broadcasts — refuse to run it.
        routing = network.routing
        from repro.routing.base import RoutingAlgorithm as _Base

        if (
            not routing.needs_post_cycle
            and type(routing).post_cycle is not _Base.post_cycle
        ):
            raise TypeError(
                f"{type(routing).__name__} overrides post_cycle but does not "
                "declare needs_post_cycle = True"
            )
        self._post_cycle = routing.post_cycle if routing.needs_post_cycle else None
        # Work-horizon hints, filled in by ``step`` as a by-product of its
        # injection and retirement passes: the earliest scheduled router
        # event and the earliest pending node injection.  Invalidated at
        # ``run`` entry because callers may mutate network state between
        # runs (tests enqueue packets by hand).
        self._hint_valid = False
        self._hint_router_event = _NO_EVENT
        self._hint_node_injection = _NO_EVENT

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles (warping over idle ones)."""
        end = self.cycle + cycles
        start_cycle = self.cycle
        skipped_before = self.cycles_skipped
        self._hint_valid = False
        try:
            if not self.time_warp:
                while self.cycle < end:
                    self.step()
                return
            network = self.network
            traffic = self.traffic
            while self.cycle < end:
                cycle = self.cycle
                if self._hint_valid:
                    horizon = self._hint_router_event
                    node_hint = self._hint_node_injection
                    if node_hint < horizon:
                        horizon = node_hint
                    if self.faults is not None:
                        # A scheduled fail/repair event is work: never warp
                        # past it (the topology changes at that cycle).
                        fault_event = self.faults.pending_event_cycle
                        if fault_event < horizon:
                            horizon = fault_event
                    if horizon > cycle:
                        # Routers and nodes are quiet: consult the (cheap)
                        # routing-broadcast and pre-sampled-arrival horizons.
                        if self._post_cycle is not None:
                            hook = network.routing.post_cycle_horizon(network, cycle)
                            if hook is not None and hook < horizon:
                                horizon = hook
                        arrival = traffic.next_arrival_cycle(cycle, end)
                        if arrival is not None and arrival < horizon:
                            horizon = arrival
                else:
                    horizon = self._work_horizon(cycle, end)
                if horizon <= cycle:
                    self.step()
                    continue
                target = horizon if horizon < end else end
                watchdog = self.stall_watchdog_cycles
                if watchdog is not None:
                    deadline = self._last_progress_cycle + watchdog
                    if target > deadline:
                        if deadline <= cycle:
                            # The deadline passed without a delivery: either
                            # the network is empty (marker resets, warp goes
                            # on) or this is a genuine stall (raises).
                            self._check_watchdog(cycle)
                            continue
                        target = deadline
                if self.obs is not None:
                    self.obs.on_warp(cycle, target)
                self.cycles_skipped += target - cycle
                self.cycle = target
        finally:
            advanced = self.cycle - start_cycle
            skipped = self.cycles_skipped - skipped_before
            ENGINE_STATS.cycles_executed += advanced - skipped
            ENGINE_STATS.cycles_skipped += skipped

    # -- time warp ----------------------------------------------------------------
    def _work_horizon(self, cycle: int, end: int) -> int:
        """Earliest cycle at which any component can do something.

        Full scan, used only when the per-step hints are not available (first
        iteration of a ``run`` call).  Returns ``cycle`` itself (or less)
        when there is immediate work; the caller then executes a normal
        ``step``.
        """
        network = self.network
        horizon = end
        for router in network._active_routers:
            event = router.next_event_cycle()
            if event <= cycle:
                return cycle
            if event < horizon:
                horizon = event
        for node in network._active_nodes:
            injection = node.next_injection_cycle
            if injection <= cycle:
                return cycle
            if injection < horizon:
                horizon = injection
        if self._post_cycle is not None:
            hook = network.routing.post_cycle_horizon(network, cycle)
            if hook is not None:
                if hook <= cycle:
                    return cycle
                if hook < horizon:
                    horizon = hook
        arrival = self.traffic.next_arrival_cycle(cycle, end)
        if arrival is not None:
            if arrival <= cycle:
                return cycle
            if arrival < horizon:
                horizon = arrival
        if self.faults is not None:
            fault_event = self.faults.pending_event_cycle
            if fault_event <= cycle:
                return cycle
            if fault_event < horizon:
                horizon = fault_event
        return horizon

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        network = self.network
        metrics = self.metrics
        obs = self.obs

        # 0. scheduled topology changes.  Applied before any router phase so
        # the whole cycle sees one consistent fault epoch; the warp horizon
        # guarantees we never jump past a due event.
        faults = self.faults
        if faults is not None and faults.pending_event_cycle <= cycle:
            if faults.apply_due(cycle) and metrics is not None:
                metrics.on_fault_epoch(cycle)

        # 1. traffic generation (activates the source nodes)
        nodes = network.nodes
        for src, packet in self.traffic.generate(cycle):
            nodes[src].enqueue(packet)
            if metrics is not None:
                metrics.record_generated(packet)

        # 2. injection from the backlogged source queues, in node-id order
        node_hint = _NO_EVENT
        active_nodes = network._active_nodes
        if active_nodes:
            if network._nodes_unsorted:
                active_nodes.sort(key=_node_id)
                network._nodes_unsorted = False
            backlogged = []
            for node in active_nodes:
                if cycle >= node.next_injection_cycle:
                    node.try_inject(cycle)
                if node.source_queue:
                    backlogged.append(node)
                    injection = node.next_injection_cycle
                    if injection < node_hint:
                        node_hint = injection
                else:
                    node.active = False
            network._active_nodes = backlogged

        # 3. fused router phases over the active set, in router-id order.
        # Every cross-router effect of this cycle (link arrivals, credit
        # returns) is scheduled strictly in the future and every phase read
        # is router-local, so begin/allocate/transmit per router reproduces
        # the three network-wide sweeps bit-identically.  The snapshot keeps
        # the pass stable while arrivals/credits activate further routers for
        # the *next* cycle.
        routers: Sequence[Router]
        active_routers = network._active_routers
        delivered_now = 0
        dropped_now = 0
        visited_routers = 0
        if active_routers:
            if network._routers_unsorted:
                active_routers.sort(key=_router_id)
                network._routers_unsorted = False
            routers = active_routers[:]
            visited_routers = len(routers)
            for router in routers:
                if router._next_begin_event <= cycle:
                    router.begin_cycle(cycle)
                if router._occupied_vcs:
                    router.allocate(cycle)
                if router._next_transmit_event <= cycle:
                    router.transmit(cycle)
                if router.delivered:
                    for packet in router.drain_delivered():
                        delivered_now += 1
                        if metrics is not None:
                            metrics.record_delivery(packet, cycle)
                        if obs is not None:
                            obs.record_delivery(packet, cycle)
                if faults is not None and router.dropped:
                    for packet in router.drain_dropped():
                        dropped_now += 1
                        if metrics is not None:
                            metrics.record_dropped(packet, cycle)
                        if obs is not None:
                            obs.record_dropped(packet, cycle)

        # 4. network-wide routing hook (PB saturation ECN / ECtN broadcasts);
        # mechanisms without per-cycle work declare needs_post_cycle=False
        # and skip the call entirely.
        if self._post_cycle is not None:
            self._post_cycle(network, cycle)

        if delivered_now:
            self.delivered_packets += delivered_now
            self._last_progress_cycle = cycle
        if dropped_now:
            # Dropping an unreachable packet is forward progress: the network
            # sheds the packet instead of tripping the stall watchdog.
            self.dropped_packets += dropped_now
            self._last_progress_cycle = cycle

        # 5. retire idle routers; the same pass yields the earliest scheduled
        # router event — the expensive half of the next cycle's work horizon
        # — from the routers' cached begin/transmit event times, so the hint
        # costs two comparisons per active router.
        router_hint = _NO_EVENT
        current = network._active_routers
        if current:
            still_active = []
            for router in current:
                if router._occupied_vcs:
                    still_active.append(router)
                    router_hint = -1
                else:
                    begin = router._next_begin_event
                    transmit = router._next_transmit_event
                    event = begin if begin < transmit else transmit
                    if event >= _NO_EVENT:
                        router.active = False
                    else:
                        still_active.append(router)
                        if event < router_hint:
                            router_hint = event
            network._active_routers = still_active

        self._hint_router_event = router_hint
        self._hint_node_injection = node_hint
        self._hint_valid = True

        if obs is not None:
            obs.on_cycle(cycle, visited_routers)

        self._check_watchdog(cycle)
        self.cycle = cycle + 1

    # -- observation ---------------------------------------------------------------
    def attach_observation(self, hub) -> None:
        """Wire an :class:`~repro.obs.hub.ObservationHub` into this engine.

        Attachment caches the hub on the engine's ``obs`` slot and the
        routing algorithm's ``_obs`` attribute; every instrumentation site
        afterwards is a single ``is None`` check of one of those two.  The
        hub is a pure observer — no simulation state, no RNG streams — so
        attaching it cannot change results (asserted by the probes-enabled
        golden/warp-identity tests).
        """
        self.obs = hub
        self.network.routing._obs = hub
        hub.on_attach(self)

    def detach_observation(self) -> None:
        """Remove the hub; the engine returns to the zero-overhead path."""
        self.network.routing._obs = None
        self.obs = None

    def _make_obs_reader(self):
        """State reader for occupancy snapshots (backend-specific)."""
        from repro.obs.readers import ObjectStateReader

        return ObjectStateReader(self.network)

    # -- test/diagnostic surface ---------------------------------------------------
    def schedule_arrival(
        self, rid: int, port: int, complete_cycle: int, vc: int, packet
    ) -> None:
        """Fabricate a link arrival at a router input, any backend.

        Test-facing: lets warp/watchdog tests plant a packet on a link
        without running traffic through the fabric.
        """
        self.network.routers[rid].receive_arrival(port, complete_cycle, vc, packet)

    # -- accounting ---------------------------------------------------------------
    def total_buffered_packets(self) -> int:
        """Packets inside the network fabric, wherever the backend keeps them.

        Backend-agnostic accounting surface: the object engine counts the
        network's buffers, the SoA engine its flat arrays.  Conservation
        checks must go through this instead of ``network.total_buffered_packets``.
        """
        return self.network.total_buffered_packets()

    # -- watchdog -----------------------------------------------------------------
    def _check_watchdog(self, cycle: int) -> None:
        if self.stall_watchdog_cycles is None:
            return
        if cycle - self._last_progress_cycle < self.stall_watchdog_cycles:
            return
        if self.network.total_buffered_packets() == 0:
            self._last_progress_cycle = cycle
            return
        raise SimulationStallError(
            f"no packet delivered for {self.stall_watchdog_cycles} cycles "
            f"(cycle {cycle}) while {self.network.total_buffered_packets()} packets "
            "are buffered in the network - possible deadlock or wiring bug\n"
            + self._stall_snapshot(cycle)
        )

    def _stall_snapshot(self, cycle: int) -> str:
        """Diagnostic snapshot for :class:`SimulationStallError`.

        Lists the most-congested routers (occupied-VC counts) and the oldest
        in-flight packet — enough to tell a routing deadlock from a fault
        wiring bug without re-running under a debugger.
        """
        occupancy = []
        oldest = None
        oldest_router = -1
        for router in self.network.routers:
            occupied = len(router._occupied_vcs)
            if occupied:
                occupancy.append((occupied, router.router_id))
            for ip in router.input_ports:
                for ivc in ip.vcs:
                    for packet in ivc.buffer:
                        if oldest is None or packet.creation_cycle < oldest.creation_cycle:
                            oldest = packet
                            oldest_router = router.router_id
        occupancy.sort(reverse=True)
        lines = ["stall diagnostics:"]
        top = ", ".join(
            f"router {rid}: {count} occupied VCs" for count, rid in occupancy[:5]
        )
        lines.append(f"  busiest routers: {top or 'none'}")
        if oldest is not None:
            lines.append(
                f"  oldest buffered packet: pid={oldest.pid} "
                f"{oldest.src}->{oldest.dst} phase={oldest.phase.value} "
                f"hops={oldest.hops} fault_mode={oldest.fault_mode} "
                f"age={cycle - oldest.creation_cycle} cycles "
                f"at router {oldest_router}"
            )
            # With probes attached, add the recorded flight path of the
            # stuck packet and the last trigger decision on its router —
            # post-mortem material a plain occupancy census cannot give.
            if self.obs is not None:
                lines.extend(self.obs.stall_context(oldest.pid, oldest_router))
        return "\n".join(lines)
