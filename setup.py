"""Setup shim for environments without the `wheel` package (offline installs).

``pip install -e .`` uses pyproject.toml; this file additionally allows the
legacy ``python setup.py develop`` editable install used in offline
environments where PEP 517 editable builds are unavailable.
"""
from setuptools import setup

setup()
