#!/usr/bin/env python
"""Markdown link checker for the shipped documentation.

Scans the given markdown files for links and images and fails when a
*relative* target (another document, a source file, an anchorless section
of this repository) does not exist on disk, so renamed or deleted files
cannot silently rot the docs.  External links (``http(s)://``, ``mailto:``)
are format-checked only — CI has no business depending on the network —
and pure in-page anchors (``#section``) are checked against the file's own
headings.

Usage::

    python tools/check_docs.py README.md EXPERIMENTS.md docs/architecture.md

Exit status: 0 = docs are clean, 1 = broken links (count printed), 2 = bad
usage.  The tool is dependency-free on purpose: the CI docs job runs it
before any package installation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images: [text](target) / ![alt](target).  Reference-style
#: definitions: [label]: target.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_EXTERNAL = re.compile(r"^(https?://|mailto:)", re.IGNORECASE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_file(path: Path) -> list:
    """Return a list of (target, reason) problems found in ``path``."""
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    prose = _CODE_FENCE.sub("", text)
    targets = _INLINE_LINK.findall(prose) + _REFERENCE_DEF.findall(prose)
    anchors = {slugify(h) for h in _HEADING.findall(text)}
    problems = []
    for target in targets:
        if _EXTERNAL.match(target):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors:
                problems.append((target, "anchor not found in this file"))
            continue
        rel, _, fragment = target.partition("#")
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            problems.append((target, f"file not found: {resolved}"))
            continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            other = {slugify(h) for h in _HEADING.findall(resolved.read_text(encoding="utf-8"))}
            if slugify(fragment) not in other:
                problems.append((target, f"anchor not found in {rel}"))
    return problems


def main(argv=None) -> int:
    files = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not files:
        print("usage: check_docs.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    broken = 0
    for path in files:
        if not path.exists():
            print(f"{path}: MISSING (listed in the docs job but not on disk)")
            broken += 1
            continue
        problems = check_file(path)
        for target, reason in problems:
            print(f"{path}: broken link {target!r} ({reason})")
        broken += len(problems)
        if not problems:
            print(f"{path}: ok")
    if broken:
        print(f"{broken} broken link(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
