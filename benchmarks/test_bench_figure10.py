"""Benchmark / regeneration harness for Fig. 10 (Base threshold sensitivity)."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure10_report, run_figure10


@pytest.mark.parametrize(
    "pattern,thresholds",
    [("UN", (2, 3, 5)), ("ADV+1", (3, 5, 8))],
    ids=["fig10a_UN", "fig10b_ADV1"],
)
def test_figure10(benchmark, steady_scale, pattern, thresholds):
    rows = run_once(
        benchmark,
        run_figure10,
        pattern=pattern,
        thresholds=thresholds,
        scale=steady_scale,
    )
    print()
    print(figure10_report(rows, pattern))
    labels = {row["routing"] for row in rows}
    assert {f"Base(th={t})" for t in thresholds} <= labels
    reference = "MIN" if pattern == "UN" else "VAL"
    assert reference in labels
