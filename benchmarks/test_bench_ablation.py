"""Ablation benchmarks: Section VI-A threshold analysis and raw simulator cost."""

from __future__ import annotations

from conftest import run_once
from repro.config.parameters import PAPER_PARAMETERS, SimulationParameters
from repro.experiments import measured_average_counter, threshold_analysis
from repro.simulation.simulator import Simulator


def test_threshold_analysis_section6a(benchmark):
    """Section VI-A: the measured average contention counter under saturated
    uniform traffic approaches the analytical average-VCs-per-port value."""
    params = SimulationParameters.tiny()

    def run():
        return measured_average_counter(
            params, offered_load=0.9, warmup_cycles=300, sample_cycles=150
        )

    measured = run_once(benchmark, run)
    analysis = threshold_analysis(params)
    print()
    print(f"analytical avg VCs/port: {analysis.average_vcs_per_port:.2f}")
    print(f"measured avg counter   : {measured:.2f}")
    print(f"paper-scale window     : th in [{threshold_analysis(PAPER_PARAMETERS).lower_bound}, "
          f"{threshold_analysis(PAPER_PARAMETERS).upper_bound}]")
    # The measured counter is positive and of the same order as the analysis.
    assert 0.0 < measured < 3 * analysis.average_vcs_per_port


def test_simulator_cycle_cost(benchmark):
    """Raw cost of simulating 500 cycles of the small preset at 30% UN load."""
    params = SimulationParameters.small()

    def run():
        sim = Simulator(params, "Base", "UN", offered_load=0.3, seed=1)
        sim.run_cycles(500)
        return sim.engine.delivered_packets

    delivered = run_once(benchmark, run)
    assert delivered > 0
