"""Benchmark / regeneration harness for Fig. 5 (latency & throughput vs load).

Each benchmark runs the :func:`repro.experiments.run_figure5` sweep for one
traffic pattern at reduced scale and prints the rows the paper plots.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure5_report, run_figure5

#: Reduced mechanism set for the benchmark (the harness accepts all seven).
ROUTINGS = ("MIN", "VAL", "OLM", "Base", "ECtN")


@pytest.mark.parametrize("pattern", ["UN", "ADV+1", "ADV+h"], ids=["fig5a_UN", "fig5b_ADV1", "fig5c_ADVh"])
def test_figure5(benchmark, steady_scale, pattern):
    rows = run_once(benchmark, run_figure5, pattern=pattern, scale=steady_scale, routings=ROUTINGS)
    assert len(rows) == len(ROUTINGS) * len(
        steady_scale.un_loads if pattern == "UN" else steady_scale.adv_loads
    )
    print()
    print(figure5_report(rows, pattern))

    by_routing = {}
    for row in rows:
        by_routing.setdefault(row["routing"], []).append(row)
    if pattern == "UN":
        # Fig. 5a shape: Base matches MIN's pre-saturation latency.
        low_load = min(r["offered_load"] for r in rows)
        min_lat = next(r["mean_latency"] for r in by_routing["MIN"] if r["offered_load"] == low_load)
        base_lat = next(r["mean_latency"] for r in by_routing["Base"] if r["offered_load"] == low_load)
        assert base_lat <= min_lat * 1.1
    else:
        # Fig. 5b/5c shape: adaptive mechanisms out-deliver MIN at high load.
        high_load = max(r["offered_load"] for r in rows)
        min_thr = next(r["accepted_load"] for r in by_routing["MIN"] if r["offered_load"] == high_load)
        base_thr = next(r["accepted_load"] for r in by_routing["Base"] if r["offered_load"] == high_load)
        assert base_thr > min_thr
