"""Benchmark / smoke harness for the fault-injection subsystem.

Runs the degradation-curve sweep (MIN + Base on the Dragonfly, healthy vs
5% failed links) serially in-process, timing the sweep and asserting the
robustness shape: nothing drops on a connected surviving graph, packets do
get rerouted, and the contention-based mechanism retains throughput at
least as well as MIN.  This is the CI gate for the fault layer: a
regression in the fault runtime, the fault-aware routing fallbacks (class
ladder / dateline steering / escape tree), or the hardened sweep executor
fails here.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fault_sweep_report, run_fault_sweep

ROUTINGS = ("MIN", "Base")
FAILURE_PERCENTS = (0.0, 5.0)


def test_faults_smoke_dragonfly_degradation(benchmark, steady_scale):
    rows = run_once(
        benchmark,
        run_fault_sweep,
        scale=steady_scale,
        routings=ROUTINGS,
        failure_percents=FAILURE_PERCENTS,
    )
    assert len(rows) == len(ROUTINGS) * len(FAILURE_PERCENTS)
    print()
    print(fault_sweep_report(rows))

    assert all(not row["failures"] for row in rows)
    assert all(row["dropped_packets"] == 0 for row in rows)
    faulted = {
        row["routing"]: row for row in rows if row["link_failure_percent"] == 5.0
    }
    # The sampled 5% fault set must actually disturb some paths.
    assert all(row["fault_rerouted_packets"] > 0 for row in faulted.values())
    # Degradation stays moderate at 5% failures...
    assert all(row["throughput_retained"] >= 0.8 for row in faulted.values())
    # ...and the contention-based mechanism retains at least MIN's share.
    assert (
        faulted["Base"]["throughput_retained"]
        >= 0.95 * faulted["MIN"]["throughput_retained"]
    )
