"""Benchmark / regeneration harness for Fig. 6 (mixed ADV+1/UN traffic)."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import figure6_report, run_figure6

ROUTINGS = ("OLM", "Base", "ECtN")
FRACTIONS = (0.0, 0.5, 1.0)


def test_figure6(benchmark, steady_scale):
    rows = run_once(
        benchmark,
        run_figure6,
        scale=steady_scale,
        routings=ROUTINGS,
        uniform_fractions=FRACTIONS,
    )
    assert len(rows) == len(ROUTINGS) * len(FRACTIONS)
    print()
    print(figure6_report(rows))
    # Latency under the pure-UN mix must not exceed the pure-ADV mix for the
    # contention mechanism (uniform traffic is the easy case).
    base_rows = {row["uniform_fraction"]: row for row in rows if row["routing"] == "Base"}
    assert base_rows[1.0]["mean_latency"] <= base_rows[0.0]["mean_latency"] * 1.2
