"""Benchmark / regeneration harness for Fig. 9 (PB oscillations vs ECtN)."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import figure9_report, oscillation_amplitude, run_figure9

ROUTINGS = ("PB", "ECtN")


def test_figure9(benchmark, transient_scale):
    series = run_once(
        benchmark,
        run_figure9,
        scale=transient_scale,
        routings=ROUTINGS,
        observe_after=transient_scale.transient_observe_after * 2,
    )
    assert set(series) == set(ROUTINGS)
    print()
    print(figure9_report(series))
    # Both mechanisms must have settled series to compare; the report includes
    # the peak-to-peak amplitude used to quantify PB's oscillations.
    for routing in ROUTINGS:
        amplitude = oscillation_amplitude(series[routing])
        assert amplitude == amplitude  # not NaN
