"""Benchmark / regeneration harness for Fig. 8 (transient with large buffers)."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import figure8_report, run_figure8

ROUTINGS = ("OLM", "Base")
BUFFER_FACTOR = 4  # the paper uses 8x; 4x keeps the benchmark short


def test_figure8(benchmark, transient_scale):
    series = run_once(
        benchmark,
        run_figure8,
        scale=transient_scale,
        routings=ROUTINGS,
        buffer_factor=BUFFER_FACTOR,
        observe_after=transient_scale.transient_observe_after,
    )
    assert set(series) == set(ROUTINGS)
    print()
    print(figure8_report(series))
    # The contention trigger must still divert traffic with enlarged buffers
    # (its decisions are decoupled from the buffer size).
    base = series["Base"]
    after = [m for c, m in zip(base["cycles"], base["misrouted_fraction"]) if c >= 40 and m == m]
    assert after and max(after) > 0.5
