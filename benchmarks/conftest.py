"""Shared reduced-scale settings for the benchmark harness.

Each benchmark regenerates one figure of the paper through the
``repro.experiments`` harness, at a scale reduced enough that the whole
suite finishes in minutes.  The same harness functions accept the ``small``,
``transient`` and ``paper`` scales for higher-fidelity runs (see
EXPERIMENTS.md); the benchmark numbers themselves measure the simulator's
wall-clock cost per figure, while the printed rows give the reproduced
series.

Perf trajectory: at the end of a benchmark session the per-figure wall-clock
timings — together with the engine's simulated-cycle throughput
(``cycles_per_second``), the number of cycles the time-warp engine skipped
(``cycles_skipped``) and the simulation backend that produced them — are
written to ``BENCH_steady.json`` / ``BENCH_transient.json`` (in
``$BENCH_ARTIFACT_DIR``, default the current directory) so CI can archive
them and compare against the committed baselines
(``python -m repro.tools.bench_compare``).

The backend defaults to the committed baselines' backend and can be
overridden per session with ``REPRO_BENCH_BACKEND=object|soa|soa-numba`` —
timings from different backends are different experiments, so
``bench_compare`` refuses to treat a cross-backend pair as a regression
signal.  Regenerate the committed artifacts with the same backend they
were recorded with (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.experiments.scales import TINY_SCALE, TRANSIENT_SCALE, ExperimentScale
from repro.simulation.engine import ENGINE_STATS

#: Backend every benchmark of the session runs on.  The committed baseline
#: artifacts are recorded with the default; override per session with
#: ``REPRO_BENCH_BACKEND`` to measure another backend (the artifacts tag
#: every test with the backend so apples-to-oranges comparisons are caught).
_BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "soa")

#: Steady-state benchmarks: the tiny preset with a single seed and few loads.
BENCH_STEADY_SCALE: ExperimentScale = dataclasses.replace(
    TINY_SCALE,
    params=TINY_SCALE.params.with_backend(_BENCH_BACKEND),
    warmup_cycles=200,
    measure_cycles=400,
    seeds=(1,),
    un_loads=(0.2, 0.5),
    adv_loads=(0.1, 0.3),
    mixed_load=0.3,
)

#: Transient benchmarks: a mid-sized balanced Dragonfly (p=4, a=4, h=4,
#: 272 nodes) driven hard enough that source-side contention appears, with a
#: short observation window.  The full-fidelity runs use TRANSIENT_SCALE.
_BENCH_TRANSIENT_PARAMS: SimulationParameters = dataclasses.replace(
    SimulationParameters.transient(),
    topology=DragonflyConfig(p=4, a=4, h=4),
    backend=_BENCH_BACKEND,
)

BENCH_TRANSIENT_SCALE: ExperimentScale = dataclasses.replace(
    TRANSIENT_SCALE,
    params=_BENCH_TRANSIENT_PARAMS,
    warmup_cycles=250,
    transient_observe_before=40,
    transient_observe_after=160,
    transient_bin=20,
    transient_load=0.3,
    seeds=(1,),
)


@pytest.fixture(scope="session")
def steady_scale() -> ExperimentScale:
    return BENCH_STEADY_SCALE


@pytest.fixture(scope="session")
def transient_scale() -> ExperimentScale:
    return BENCH_TRANSIENT_SCALE


#: Per-test metrics (wall-clock seconds, simulated-cycle throughput, warped
#: cycles, backend), collected by ``run_once`` and written at session end.
_BENCH_METRICS: Dict[str, Dict[str, object]] = {}

#: Benchmarks regenerating steady-state figures vs transient figures.
_STEADY_TAGS = (
    "figure5",
    "figure6",
    "figure10",
    "ablation",
    "cycle_cost",
    "timewarp",
    "crosstopo",
    "faults",
)
_TRANSIENT_TAGS = ("figure7", "figure8", "figure9")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The cycle metrics come from the process-local ``ENGINE_STATS``, which is
    correct because every benchmark here runs its sweeps serially in-process
    (no ``workers=`` argument).  A benchmark that fanned out over the
    parallel sweep executor would leave its cycles in the worker processes
    and must not rely on these fields.
    """
    stats_before = ENGINE_STATS.snapshot()
    start = time.perf_counter()
    result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    executed = ENGINE_STATS.cycles_executed - stats_before["cycles_executed"]
    skipped = ENGINE_STATS.cycles_skipped - stats_before["cycles_skipped"]
    cycles = executed + skipped
    test_id = os.environ.get("PYTEST_CURRENT_TEST", "unknown").split(" ")[0]
    _BENCH_METRICS[test_id] = {
        "seconds": round(elapsed, 4),
        "cycles_per_second": round(cycles / elapsed, 1) if elapsed > 0 else 0.0,
        "cycles_skipped": skipped,
        "backend": _BENCH_BACKEND,
    }
    return result


def _write_artifact(path: Path, tests: Dict[str, Dict[str, object]]) -> None:
    payload = {
        "schema": "bench-trajectory-v3",
        "created_unix": int(time.time()),
        "tests": {test: tests[test] for test in sorted(tests)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Write the BENCH_steady / BENCH_transient perf-trajectory artifacts."""
    if not _BENCH_METRICS:
        return
    out_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    steady = {
        test: metrics
        for test, metrics in _BENCH_METRICS.items()
        if any(tag in test for tag in _STEADY_TAGS)
    }
    transient = {
        test: metrics
        for test, metrics in _BENCH_METRICS.items()
        if any(tag in test for tag in _TRANSIENT_TAGS)
    }
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        if steady:
            _write_artifact(out_dir / "BENCH_steady.json", steady)
        if transient:
            _write_artifact(out_dir / "BENCH_transient.json", transient)
    except OSError:  # pragma: no cover - read-only CI sandboxes
        pass
