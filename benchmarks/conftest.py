"""Shared reduced-scale settings for the benchmark harness.

Each benchmark regenerates one figure of the paper through the
``repro.experiments`` harness, at a scale reduced enough that the whole
suite finishes in minutes.  The same harness functions accept the ``small``,
``transient`` and ``paper`` scales for higher-fidelity runs (see
EXPERIMENTS.md); the benchmark numbers themselves measure the simulator's
wall-clock cost per figure, while the printed rows give the reproduced
series.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.experiments.scales import TINY_SCALE, TRANSIENT_SCALE, ExperimentScale

#: Steady-state benchmarks: the tiny preset with a single seed and few loads.
BENCH_STEADY_SCALE: ExperimentScale = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=200,
    measure_cycles=400,
    seeds=(1,),
    un_loads=(0.2, 0.5),
    adv_loads=(0.1, 0.3),
    mixed_load=0.3,
)

#: Transient benchmarks: a mid-sized balanced Dragonfly (p=4, a=4, h=4,
#: 272 nodes) driven hard enough that source-side contention appears, with a
#: short observation window.  The full-fidelity runs use TRANSIENT_SCALE.
_BENCH_TRANSIENT_PARAMS: SimulationParameters = dataclasses.replace(
    SimulationParameters.transient(),
    topology=DragonflyConfig(p=4, a=4, h=4),
)

BENCH_TRANSIENT_SCALE: ExperimentScale = dataclasses.replace(
    TRANSIENT_SCALE,
    params=_BENCH_TRANSIENT_PARAMS,
    warmup_cycles=250,
    transient_observe_before=40,
    transient_observe_after=160,
    transient_bin=20,
    transient_load=0.3,
    seeds=(1,),
)


@pytest.fixture(scope="session")
def steady_scale() -> ExperimentScale:
    return BENCH_STEADY_SCALE


@pytest.fixture(scope="session")
def transient_scale() -> ExperimentScale:
    return BENCH_TRANSIENT_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
