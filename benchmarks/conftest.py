"""Shared reduced-scale settings for the benchmark harness.

Each benchmark regenerates one figure of the paper through the
``repro.experiments`` harness, at a scale reduced enough that the whole
suite finishes in minutes.  The same harness functions accept the ``small``,
``transient`` and ``paper`` scales for higher-fidelity runs (see
EXPERIMENTS.md); the benchmark numbers themselves measure the simulator's
wall-clock cost per figure, while the printed rows give the reproduced
series.

Perf trajectory: at the end of a benchmark session the per-figure wall-clock
timings are written to ``BENCH_steady.json`` / ``BENCH_transient.json`` (in
``$BENCH_ARTIFACT_DIR``, default the current directory) so CI can archive
them and future changes can be checked against past runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.experiments.scales import TINY_SCALE, TRANSIENT_SCALE, ExperimentScale

#: Steady-state benchmarks: the tiny preset with a single seed and few loads.
BENCH_STEADY_SCALE: ExperimentScale = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=200,
    measure_cycles=400,
    seeds=(1,),
    un_loads=(0.2, 0.5),
    adv_loads=(0.1, 0.3),
    mixed_load=0.3,
)

#: Transient benchmarks: a mid-sized balanced Dragonfly (p=4, a=4, h=4,
#: 272 nodes) driven hard enough that source-side contention appears, with a
#: short observation window.  The full-fidelity runs use TRANSIENT_SCALE.
_BENCH_TRANSIENT_PARAMS: SimulationParameters = dataclasses.replace(
    SimulationParameters.transient(),
    topology=DragonflyConfig(p=4, a=4, h=4),
)

BENCH_TRANSIENT_SCALE: ExperimentScale = dataclasses.replace(
    TRANSIENT_SCALE,
    params=_BENCH_TRANSIENT_PARAMS,
    warmup_cycles=250,
    transient_observe_before=40,
    transient_observe_after=160,
    transient_bin=20,
    transient_load=0.3,
    seeds=(1,),
)


@pytest.fixture(scope="session")
def steady_scale() -> ExperimentScale:
    return BENCH_STEADY_SCALE


@pytest.fixture(scope="session")
def transient_scale() -> ExperimentScale:
    return BENCH_TRANSIENT_SCALE


#: Wall-clock per benchmark test id, collected by ``run_once`` and written to
#: the perf-trajectory artifacts at session end.
_BENCH_TIMINGS: Dict[str, float] = {}

#: Benchmarks regenerating steady-state figures vs transient figures.
_STEADY_TAGS = ("figure5", "figure6", "figure10", "ablation", "cycle_cost")
_TRANSIENT_TAGS = ("figure7", "figure8", "figure9")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    start = time.perf_counter()
    result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    test_id = os.environ.get("PYTEST_CURRENT_TEST", "unknown").split(" ")[0]
    _BENCH_TIMINGS[test_id] = elapsed
    return result


def _write_artifact(path: Path, timings: Dict[str, float]) -> None:
    payload = {
        "schema": "bench-trajectory-v1",
        "created_unix": int(time.time()),
        "timings_s": {test: round(seconds, 4) for test, seconds in sorted(timings.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Write the BENCH_steady / BENCH_transient perf-trajectory artifacts."""
    if not _BENCH_TIMINGS:
        return
    out_dir = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    steady = {
        test: seconds
        for test, seconds in _BENCH_TIMINGS.items()
        if any(tag in test for tag in _STEADY_TAGS)
    }
    transient = {
        test: seconds
        for test, seconds in _BENCH_TIMINGS.items()
        if any(tag in test for tag in _TRANSIENT_TAGS)
    }
    try:
        if steady:
            _write_artifact(out_dir / "BENCH_steady.json", steady)
        if transient:
            _write_artifact(out_dir / "BENCH_transient.json", transient)
    except OSError:  # pragma: no cover - read-only CI sandboxes
        pass
