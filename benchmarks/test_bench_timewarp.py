"""Benchmarks for the regimes the time-warp engine targets.

Two workloads bracket the "quiet cycles should cost nothing" goal:

* the figure-5 uniform-traffic point at the lowest swept load (the cheap
  corner of every load sweep), and
* a drain-heavy run: a short busy phase, then injection stops and the
  simulation runs for tens of thousands of cycles while the network drains
  and idles — the transient/drain pattern of Figs. 7-9 taken to its limit.

The drain benchmark asserts that the engine actually warps (a majority of
the simulated cycles are skipped, not executed), so a regression that
silently disables the warp path fails the suite even on a fast machine.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import load_sweep
from repro.simulation.simulator import Simulator


def test_timewarp_low_load_un(benchmark, steady_scale):
    """Figure-5 UN at the lowest swept load only (MIN + Base)."""
    low_load = min(steady_scale.un_loads)
    rows = run_once(
        benchmark,
        load_sweep,
        steady_scale,
        ["MIN", "Base"],
        "UN",
        loads=(low_load,),
    )
    assert len(rows) == 2
    assert all(row["offered_load"] == low_load for row in rows)


def test_timewarp_drain(benchmark, steady_scale):
    """A short busy phase, then a 200k-cycle drain/idle stretch.

    The idle stretch dominates a cycle-by-cycle engine; the time-warp engine
    crosses it in a handful of jumps (watchdog-deadline sized).
    """

    def run():
        sim = Simulator(
            steady_scale.params, "Base", "UN", offered_load=0.3, seed=1
        )
        sim.run_cycles(100)
        sim.traffic.set_offered_load(0.0)
        sim.run_cycles(200_000)
        return sim

    sim = run_once(benchmark, run)
    assert sim.network.total_buffered_packets() == 0
    # The drain stretch must be dominated by warped-over cycles.
    assert sim.engine.cycles_skipped > 150_000
