"""Benchmark / smoke harness for the cross-topology subsystem.

Runs MIN + VAL on the flattened butterfly and on the torus at the tiny
benchmark scale through the cross-topology sweep harness, timing each sweep
and asserting the qualitative adversarial shape (VAL out-delivers MIN at
the highest load), plus MIN + Base on the torus tornado for the in-transit
contention path (the nonminimal ring escape) and MIN + Base on the fat tree
subtree shift (the equal-cost uplink multipath).  This is the CI gate for
the multi-topology layer: a regression in the topologies, the
topology-agnostic routing paths, the torus dateline VC schedule, the
fat-tree up/down schedule, the generalized contention mechanisms, or the
cross-topology harness fails here.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import cross_topology_report, run_cross_topology

ROUTINGS = ("MIN", "VAL")


def test_crosstopo_smoke_flattened_butterfly(benchmark, steady_scale):
    rows = run_once(
        benchmark,
        run_cross_topology,
        topologies=("flattened_butterfly",),
        routings=ROUTINGS,
        pattern="ADV+1",
        scale=steady_scale,
    )
    assert len(rows) == len(ROUTINGS) * len(steady_scale.adv_loads)
    assert all(row["topology"] == "flattened_butterfly" for row in rows)
    print()
    print(cross_topology_report(rows, "ADV+1"))

    by_routing = {}
    for row in rows:
        by_routing.setdefault(row["routing"], []).append(row)
    high_load = max(r["offered_load"] for r in rows)
    min_thr = next(
        r["accepted_load"] for r in by_routing["MIN"] if r["offered_load"] == high_load
    )
    val_thr = next(
        r["accepted_load"] for r in by_routing["VAL"] if r["offered_load"] == high_load
    )
    # The region-shift adversary saturates MIN's direct column links while
    # VAL spreads the load; VAL must deliver at least as much as MIN.
    assert val_thr >= min_thr * 0.95
    # MIN never misroutes anywhere.
    assert all(r["global_misroute_fraction"] == 0.0 for r in by_routing["MIN"])


def test_crosstopo_smoke_torus_tornado(benchmark, steady_scale):
    """MIN + VAL on the torus under the tornado pattern (ADV+h).

    Exercises the dateline VC schedule end to end: dimension-order minimal
    routing funnels the half-ring slab shift one way around the last ring,
    while VAL's second-leg classes let it spread over both directions.
    """
    rows = run_once(
        benchmark,
        run_cross_topology,
        topologies=("torus",),
        routings=ROUTINGS,
        pattern="ADV+h",
        scale=steady_scale,
    )
    assert len(rows) == len(ROUTINGS) * len(steady_scale.adv_loads)
    assert all(row["topology"] == "torus" for row in rows)
    print()
    print(cross_topology_report(rows, "ADV+h"))

    by_routing = {}
    for row in rows:
        by_routing.setdefault(row["routing"], []).append(row)
    high_load = max(r["offered_load"] for r in rows)
    min_thr = next(
        r["accepted_load"] for r in by_routing["MIN"] if r["offered_load"] == high_load
    )
    val_thr = next(
        r["accepted_load"] for r in by_routing["VAL"] if r["offered_load"] == high_load
    )
    assert val_thr >= min_thr * 0.95
    # A torus has no global links, so no mechanism ever misroutes globally.
    assert all(r["global_misroute_fraction"] == 0.0 for r in rows)


def test_crosstopo_smoke_torus_contention(benchmark, steady_scale):
    """MIN + Base on the torus under the tornado pattern (ADV+h).

    Exercises the contention-triggered nonminimal ring escape end to end:
    above the escape threshold Base sends part of the last-ring traffic the
    other way around (a local misroute on a direct network) and must
    deliver at least as much as funneled MIN at the highest load.
    """
    routings = ("MIN", "Base")
    rows = run_once(
        benchmark,
        run_cross_topology,
        topologies=("torus",),
        routings=routings,
        pattern="ADV+h",
        scale=steady_scale,
    )
    assert len(rows) == len(routings) * len(steady_scale.adv_loads)
    print()
    print(cross_topology_report(rows, "ADV+h"))

    by_routing = {}
    for row in rows:
        by_routing.setdefault(row["routing"], []).append(row)
    high_load = max(r["offered_load"] for r in rows)
    min_thr = next(
        r["accepted_load"] for r in by_routing["MIN"] if r["offered_load"] == high_load
    )
    base_thr = next(
        r["accepted_load"] for r in by_routing["Base"] if r["offered_load"] == high_load
    )
    assert base_thr >= min_thr
    # MIN never misroutes; Base's escapes are local (no global links).
    assert all(r["global_misroute_fraction"] == 0.0 for r in rows)


def test_crosstopo_smoke_fat_tree_contention(benchmark, steady_scale):
    """MIN + Base on the fat tree under the subtree shift (ADV+1).

    Exercises the uplink-multipath contention path end to end: minimal
    routing funnels each leaf's shifted traffic onto one uplink, and above
    the trigger threshold Base diverts blocked heads onto the sibling
    uplinks (equal-cost local misroutes on an indirect network with no
    global links).  Base must deliver at least as much as funneled MIN at
    the highest load.
    """
    routings = ("MIN", "Base")
    rows = run_once(
        benchmark,
        run_cross_topology,
        topologies=("fat_tree",),
        routings=routings,
        pattern="ADV+1",
        scale=steady_scale,
    )
    assert len(rows) == len(routings) * len(steady_scale.adv_loads)
    assert all(row["topology"] == "fat_tree" for row in rows)
    print()
    print(cross_topology_report(rows, "ADV+1"))

    by_routing = {}
    for row in rows:
        by_routing.setdefault(row["routing"], []).append(row)
    high_load = max(r["offered_load"] for r in rows)
    min_thr = next(
        r["accepted_load"] for r in by_routing["MIN"] if r["offered_load"] == high_load
    )
    base_thr = next(
        r["accepted_load"] for r in by_routing["Base"] if r["offered_load"] == high_load
    )
    assert base_thr >= min_thr * 0.95
    # A fat tree has no global links: every divert is a sibling-uplink
    # local misroute.
    assert all(r["global_misroute_fraction"] == 0.0 for r in rows)
