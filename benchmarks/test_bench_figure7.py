"""Benchmark / regeneration harness for Fig. 7 (transient UN→ADV+1, small buffers)."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import figure7_report, run_figure7

ROUTINGS = ("OLM", "Base")


def test_figure7(benchmark, transient_scale):
    series = run_once(benchmark, run_figure7, scale=transient_scale, routings=ROUTINGS)
    assert set(series) == set(ROUTINGS)
    print()
    print(figure7_report(series))
    # Fig. 7b shape: after the change the contention mechanism misroutes most
    # of its traffic (close to 0% before, high after).
    base = series["Base"]
    before = [m for c, m in zip(base["cycles"], base["misrouted_fraction"]) if c < 0 and m == m]
    after = [m for c, m in zip(base["cycles"], base["misrouted_fraction"]) if c >= 40 and m == m]
    assert before and after
    assert max(before) < 0.2
    assert max(after) > 0.5
